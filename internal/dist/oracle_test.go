package dist

import (
	"math"
	"testing"
)

// Closed-form oracle tests: every assertion compares the implementation
// against an independently derived analytic value (exact rationals, logs,
// and exponentials written out in the test, or high-precision numeric
// integration of the density) to within 1e-9 or better.

const oracleTol = 1e-9

func absErr(got, want float64) float64 { return math.Abs(got - want) }

func TestExponentialOracle(t *testing.T) {
	e := NewExponential(2)
	checks := []struct {
		name      string
		got, want float64
	}{
		{"mean", e.Mean(), 0.5},
		{"moment0", e.Moment(0), 1},
		{"moment1", e.Moment(1), 0.5},
		{"moment2", e.Moment(2), 0.5},  // 2!/2^2
		{"moment3", e.Moment(3), 0.75}, // 3!/2^3
		{"moment4", e.Moment(4), 1.5},  // 4!/2^4
		{"median", e.Quantile(0.5), math.Ln2 / 2},
		{"q0", e.Quantile(0), 0},
		{"cdf-median", e.CDF(math.Ln2 / 2), 0.5},
		{"cdf1", e.CDF(1), 1 - math.Exp(-2)},
		{"cdf-neg", e.CDF(-1), 0},
	}
	for _, c := range checks {
		if absErr(c.got, c.want) > oracleTol {
			t.Errorf("Exponential(2) %s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestUniformOracle(t *testing.T) {
	u := NewUniform(1, 3)
	checks := []struct {
		name      string
		got, want float64
	}{
		{"mean", u.Mean(), 2},
		{"moment1", u.Moment(1), 2},
		{"moment2", u.Moment(2), 13.0 / 3}, // (27-1)/(3*2)
		{"moment3", u.Moment(3), 10},       // (81-1)/(4*2)
		{"q25", u.Quantile(0.25), 1.5},
		{"q1", u.Quantile(1), 3},
		{"cdf2.5", u.CDF(2.5), 0.75},
		{"cdf-below", u.CDF(0.5), 0},
		{"cdf-above", u.CDF(4), 1},
	}
	for _, c := range checks {
		if absErr(c.got, c.want) > oracleTol {
			t.Errorf("Uniform(1,3) %s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

// TestBoundedParetoExactOracle uses alpha = 2 on [1, 4], where the moment
// integrals collapse to exact rationals: the normalizing mass is 15/16, so
// E[X] = (32/15)(3/4) = 8/5, E[X^3] = (32/15)*3 = 32/5, and the k = alpha
// resonance E[X^2] = (32/15) ln 4.
func TestBoundedParetoExactOracle(t *testing.T) {
	b := NewBoundedPareto(2, 1, 4)
	checks := []struct {
		name      string
		got, want float64
	}{
		{"mean", b.Mean(), 1.6},
		{"moment1", b.Moment(1), 1.6},
		{"moment2-log-branch", b.Moment(2), 32.0 / 15 * math.Log(4)},
		{"moment3", b.Moment(3), 6.4},
		{"cdf2", b.CDF(2), 0.8}, // (1 - 1/4)/(15/16)
		{"q80", b.Quantile(0.8), 2},
		{"q0", b.Quantile(0), 1},
		{"q1", b.Quantile(1), 4},
	}
	for _, c := range checks {
		if absErr(c.got, c.want) > oracleTol {
			t.Errorf("BoundedPareto(2,1,4) %s = %v, want %v", c.name, c.got, c.want)
		}
	}

	// The k = alpha = 1 resonance with lo = 1, hi = e gives the exact mean
	// e/(e-1): the density integrates to a pure logarithm.
	b1 := NewBoundedPareto(1, 1, math.E)
	if want := math.E / (math.E - 1); absErr(b1.Mean(), want) > oracleTol {
		t.Errorf("BoundedPareto(1,1,e) mean = %v, want e/(e-1) = %v", b1.Mean(), want)
	}
}

// TestBoundedParetoIntegralOracle cross-checks the generic (non-resonant)
// closed forms against composite-Simpson integration of the density
// alpha*lo^alpha*x^(-alpha-1)/(1-(lo/hi)^alpha), an oracle independent of
// the implementation's antiderivative.
func TestBoundedParetoIntegralOracle(t *testing.T) {
	const alpha, lo, hi = 2.5, 1.0, 10.0
	b := NewBoundedPareto(alpha, lo, hi)
	density := func(x float64) float64 {
		return alpha * math.Pow(lo, alpha) * math.Pow(x, -alpha-1) / (1 - math.Pow(lo/hi, alpha))
	}
	simpson := func(f func(float64) float64, a, c float64, n int) float64 {
		h := (c - a) / float64(n)
		sum := f(a) + f(c)
		for i := 1; i < n; i++ {
			x := a + float64(i)*h
			if i%2 == 1 {
				sum += 4 * f(x)
			} else {
				sum += 2 * f(x)
			}
		}
		return sum * h / 3
	}
	const n = 1 << 20 // smooth integrand: error far below 1e-11
	for k := 1; k <= 3; k++ {
		kk := float64(k)
		want := simpson(func(x float64) float64 { return math.Pow(x, kk) * density(x) }, lo, hi, n)
		if relDiff(b.Moment(k), want) > oracleTol {
			t.Errorf("BoundedPareto(2.5,1,10) Moment(%d) = %v, integral oracle %v", k, b.Moment(k), want)
		}
	}
	for _, x := range []float64{1.5, 2, 5, 9.5} {
		want := simpson(density, lo, x, n)
		if absErr(b.CDF(x), want) > oracleTol {
			t.Errorf("BoundedPareto(2.5,1,10) CDF(%v) = %v, integral oracle %v", x, b.CDF(x), want)
		}
	}
}

func TestHyperExpOracle(t *testing.T) {
	h := NewHyperExp([]float64{0.3, 0.7}, []float64{1, 2})
	checks := []struct {
		name      string
		got, want float64
	}{
		{"mean", h.Mean(), 0.65}, // 0.3/1 + 0.7/2
		{"moment1", h.Moment(1), 0.65},
		{"moment2", h.Moment(2), 0.95},  // 2(0.3 + 0.7/4)
		{"moment3", h.Moment(3), 2.325}, // 6(0.3 + 0.7/8)
		{"cdf1", h.CDF(1), 1 - 0.3*math.Exp(-1) - 0.7*math.Exp(-2)},
		{"cdf-neg", h.CDF(-0.5), 0},
	}
	for _, c := range checks {
		if absErr(c.got, c.want) > oracleTol {
			t.Errorf("HyperExp %s = %v, want %v", c.name, c.got, c.want)
		}
	}
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		if q := h.Quantile(p); absErr(h.CDF(q), p) > oracleTol {
			t.Errorf("HyperExp CDF(Quantile(%v)) = %v", p, h.CDF(q))
		}
	}
	if !math.IsInf(h.Quantile(1), 1) {
		t.Error("HyperExp Quantile(1) should be +Inf")
	}
}

func TestCoxian2Oracle(t *testing.T) {
	c := Coxian2{Mu1: 4, Mu2: 0.5, P: 0.25}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"mean", c.Mean(), 0.75}, // 1/4 + 0.25/0.5
		{"moment1", c.Moment(1), 0.75},
		{"moment2", c.Moment(2), 2.375}, // 2/16 + 2P/(mu1 mu2) + 2P/mu2^2
		{"moment3", c.Moment(3), 13.78125},
	}
	for _, ck := range checks {
		if absErr(ck.got, ck.want) > oracleTol {
			t.Errorf("Coxian2 %s = %v, want %v", ck.name, ck.got, ck.want)
		}
	}
	// CDF against the hypoexponential mixture written out directly.
	for _, x := range []float64{0.1, 0.75, 2, 10} {
		hypo := 1 - (0.5*math.Exp(-4*x)-4*math.Exp(-0.5*x))/(0.5-4)
		want := 0.75*(1-math.Exp(-4*x)) + 0.25*hypo
		if absErr(c.CDF(x), want) > oracleTol {
			t.Errorf("Coxian2 CDF(%v) = %v, want %v", x, c.CDF(x), want)
		}
	}
	for _, p := range []float64{0.05, 0.5, 0.99} {
		if q := c.Quantile(p); absErr(c.CDF(q), p) > oracleTol {
			t.Errorf("Coxian2 CDF(Quantile(%v)) = %v", p, c.CDF(q))
		}
	}

	// Equal-rate Coxian2 is the Erlang-2 branch of the CDF.
	er := Coxian2{Mu1: 3, Mu2: 3, P: 1}
	for _, x := range []float64{0.2, 1, 3} {
		want := 1 - math.Exp(-3*x)*(1+3*x)
		if absErr(er.CDF(x), want) > oracleTol {
			t.Errorf("Erlang-2 CDF(%v) = %v, want %v", x, er.CDF(x), want)
		}
	}
}

// TestCoxianExtremeRateRegressions pins two numerically hostile regimes
// found in review: a 1e6 rate ratio (which once saturated the
// uniformization budget and silently clamped the CDF to 1) and rates
// separated by 1e-11 relative (which once cancelled catastrophically in
// the textbook hypoexponential formula).
func TestCoxianExtremeRateRegressions(t *testing.T) {
	c := NewCoxian([]float64{1e6, 1}, []float64{1})
	got := c.CDF(0.2)
	want := 1 - (1e6*math.Exp(-0.2)-math.Exp(-0.2*1e6))/(1e6-1)
	if absErr(got, want) > 1e-9 {
		t.Errorf("disparate-rate Coxian CDF(0.2) = %v, want %v", got, want)
	}

	near := Coxian2{Mu1: 1, Mu2: 1 + 1e-11, P: 1}
	got = near.CDF(1.5)
	want = 1 - math.Exp(-1.5)*(1+1.5) // Erlang-2 limit, correct to ~1.5e-11
	if absErr(got, want) > 1e-10 {
		t.Errorf("near-equal-rate Coxian2 CDF(1.5) = %v, want %v", got, want)
	}
}

// TestQuantileEndpoints: p = 0 and p = 1 hit the support endpoints for
// every family (infinite-support families return +Inf at p = 1).
func TestQuantileEndpoints(t *testing.T) {
	c2 := Coxian2{Mu1: 4, Mu2: 0.5, P: 0.25}
	cox := NewCoxian([]float64{2, 1}, []float64{0.5})
	h := NewHyperExp([]float64{0.5, 0.5}, []float64{1, 2})
	for _, d := range []Distribution{NewExponential(1), c2, cox, h} {
		if q := d.Quantile(0); q != 0 {
			t.Errorf("%T Quantile(0) = %v", d, q)
		}
		if q := d.Quantile(1); !math.IsInf(q, 1) {
			t.Errorf("%T Quantile(1) = %v, want +Inf", d, q)
		}
	}
	if q := c2.CDF(-1); q != 0 {
		t.Errorf("Coxian2 CDF(-1) = %v", q)
	}
	if q := cox.CDF(0); q != 0 {
		t.Errorf("Coxian CDF(0) = %v", q)
	}
}

// TestCoxianUniformizationOracle pins the series-based CDF of the general
// Coxian against closed forms: the Erlang-n distribution (repeated rates,
// where partial fractions are unavailable) and the Coxian2 closed form
// (distinct rates).
func TestCoxianUniformizationOracle(t *testing.T) {
	// Erlang-4 with rate 2: CDF(x) = 1 - e^(-2x) sum_{j<4} (2x)^j/j!.
	er := NewCoxian([]float64{2, 2, 2, 2}, []float64{1, 1, 1})
	if absErr(er.Mean(), 2) > oracleTol || absErr(er.Moment(2), 5) > oracleTol {
		// E[X] = 4/2, E[X^2] = n(n+1)/rate^2 = 20/4.
		t.Fatalf("Erlang-4 moments: mean %v, m2 %v", er.Mean(), er.Moment(2))
	}
	for _, x := range []float64{0.3, 1, 2, 4, 8} {
		sum := 0.0
		term := 1.0
		for j := 0; j < 4; j++ {
			if j > 0 {
				term *= 2 * x / float64(j)
			}
			sum += term
		}
		want := 1 - math.Exp(-2*x)*sum
		if absErr(er.CDF(x), want) > 1e-12 {
			t.Errorf("Erlang-4 CDF(%v) = %v, want %v", x, er.CDF(x), want)
		}
	}

	// Distinct rates: the general Coxian must agree with Coxian2.
	g := NewCoxian([]float64{4, 0.5}, []float64{0.25})
	c2 := Coxian2{Mu1: 4, Mu2: 0.5, P: 0.25}
	for k := 1; k <= 3; k++ {
		if relDiff(g.Moment(k), c2.Moment(k)) > oracleTol {
			t.Errorf("Coxian vs Coxian2 Moment(%d): %v vs %v", k, g.Moment(k), c2.Moment(k))
		}
	}
	for _, x := range []float64{0.1, 0.75, 2, 10} {
		if absErr(g.CDF(x), c2.CDF(x)) > 1e-12 {
			t.Errorf("Coxian vs Coxian2 CDF(%v): %v vs %v", x, g.CDF(x), c2.CDF(x))
		}
	}

	// Large phase count: Erlang-400 exercises the log-space Poisson terms
	// (lambda*x ~ 400 underflows a naively computed e^(-lambda*x)).
	n := 400
	rates := make([]float64, n)
	cont := make([]float64, n-1)
	for i := range rates {
		rates[i] = float64(n) // mean 1
	}
	for i := range cont {
		cont[i] = 1
	}
	big := NewCoxian(rates, cont)
	if absErr(big.Mean(), 1) > oracleTol {
		t.Fatalf("Erlang-400 mean %v", big.Mean())
	}
	// An Erlang-400 with mean 1 is tightly concentrated: CDF(1) is near 1/2
	// (within ~1/sqrt(n) by the CLT), CDF(0.5) ~ 0, CDF(2) ~ 1.
	if f := big.CDF(1); math.Abs(f-0.5) > 0.05 {
		t.Errorf("Erlang-400 CDF(1) = %v, want ~0.5", f)
	}
	if f := big.CDF(0.5); f > 1e-6 {
		t.Errorf("Erlang-400 CDF(0.5) = %v, want ~0", f)
	}
	if f := big.CDF(2); f < 1-1e-6 {
		t.Errorf("Erlang-400 CDF(2) = %v, want ~1", f)
	}
}
