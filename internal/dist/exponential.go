package dist

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Exponential is the exponential distribution with the given rate
// (mean 1/Rate) — the job-size law of the paper's M/M/k model.
type Exponential struct {
	Rate float64
}

// NewExponential returns the exponential distribution with the given rate.
// It panics if rate is not finite and positive.
func NewExponential(rate float64) Exponential {
	if !isFinitePos(rate) {
		panic(fmt.Sprintf("dist: NewExponential rate=%v, want finite > 0", rate))
	}
	return Exponential{Rate: rate}
}

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Moment returns E[X^k] = k! / Rate^k.
func (e Exponential) Moment(k int) float64 {
	checkMomentOrder(k)
	return factorial(k) / math.Pow(e.Rate, float64(k))
}

// CDF returns 1 - exp(-Rate*x) for x >= 0.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// -Expm1 avoids cancellation for small Rate*x.
	return -math.Expm1(-e.Rate * x)
}

// Quantile returns -ln(1-p)/Rate.
func (e Exponential) Quantile(p float64) float64 {
	checkProb(p)
	return -math.Log1p(-p) / e.Rate
}

// Sample draws an exponential variate from r.
func (e Exponential) Sample(r *xrand.Rand) float64 { return r.Exp(e.Rate) }
