package dist

import (
	"math"
	"testing"
)

// FuzzFit throws arbitrary (mean, cv2, m3) targets at every fitter. The
// invariant under fuzz: a fitter either returns an error or returns a
// distribution whose parameters and moments are finite and reproduce the
// requested targets — never NaN/Inf, never a panic.
func FuzzFit(f *testing.F) {
	f.Add(1.0, 0.5, 6.0)
	f.Add(2.0, 3.0, 288.0)    // the rho = 0.5 busy period
	f.Add(0.001, 100.0, 1e-6) // tiny mean, huge variability
	f.Add(5.0, 0.01, 750.0)   // deep Erlang-mixture regime
	f.Add(1e10, 1.0, 0.0)     // huge scale
	f.Add(-1.0, -1.0, -1.0)   // nonsense
	f.Add(math.MaxFloat64, math.SmallestNonzeroFloat64, math.MaxFloat64)
	f.Add(0.0, 0.0, 0.0)

	finite := func(vs ...float64) bool {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}

	f.Fuzz(func(t *testing.T, mean, cv2, m3 float64) {
		if c, err := FitCoxian(mean, cv2); err == nil {
			for i, r := range c.Rates {
				if !finite(r) || r <= 0 {
					t.Fatalf("FitCoxian(%v, %v): rate[%d] = %v", mean, cv2, i, r)
				}
			}
			m1, m2 := c.Moment(1), c.Moment(2)
			if !finite(m1, m2) {
				t.Fatalf("FitCoxian(%v, %v): non-finite moments (%v, %v)", mean, cv2, m1, m2)
			}
			if relDiff(m1, mean) > 1e-8 {
				t.Fatalf("FitCoxian(%v, %v): mean came back %v", mean, cv2, m1)
			}
			if got := m2/(m1*m1) - 1; relDiff(got, cv2) > 1e-6 {
				t.Fatalf("FitCoxian(%v, %v): cv2 came back %v", mean, cv2, got)
			}
			if f50 := c.CDF(c.Mean()); !finite(f50) || f50 < 0 || f50 > 1 {
				t.Fatalf("FitCoxian(%v, %v): CDF(mean) = %v", mean, cv2, f50)
			}
		}

		m2 := (1 + cv2) * mean * mean
		if h, err := FitHyperExpBalanced(mean, m2); err == nil {
			if !finite(h.Probs[0], h.Probs[1], h.Rates[0], h.Rates[1]) {
				t.Fatalf("FitHyperExpBalanced(%v, %v): non-finite params %+v", mean, m2, h)
			}
			if relDiff(h.Moment(1), mean) > 1e-8 || relDiff(h.Moment(2), m2) > 1e-8 {
				t.Fatalf("FitHyperExpBalanced(%v, %v): moments (%v, %v)",
					mean, m2, h.Moment(1), h.Moment(2))
			}
			// The fitted mixture's third moment is by construction a feasible
			// Coxian2 target: the three-moment fitter must round-trip it.
			h3 := h.Moment(3)
			if finite(h3) {
				c2, err := FitCoxian2(mean, m2, h3)
				if err == nil {
					if !finite(c2.Mu1, c2.Mu2, c2.P) {
						t.Fatalf("FitCoxian2(%v, %v, %v): non-finite params %+v", mean, m2, h3, c2)
					}
					for k, want := range map[int]float64{1: mean, 2: m2, 3: h3} {
						if relDiff(c2.Moment(k), want) > 1e-5 {
							t.Fatalf("FitCoxian2(%v, %v, %v): Moment(%d) = %v",
								mean, m2, h3, k, c2.Moment(k))
						}
					}
				}
			}
		}

		// Raw three-moment fuzz: m3 is unconstrained garbage; success still
		// demands finite parameters and faithful moments.
		if c2, err := FitCoxian2(mean, m2, m3); err == nil {
			if !finite(c2.Mu1, c2.Mu2, c2.P) || c2.Mu1 <= 0 || c2.Mu2 <= 0 {
				t.Fatalf("FitCoxian2(%v, %v, %v): bad params %+v", mean, m2, m3, c2)
			}
			for k, want := range map[int]float64{1: mean, 2: m2, 3: m3} {
				if relDiff(c2.Moment(k), want) > 1e-5 {
					t.Fatalf("FitCoxian2(%v, %v, %v): Moment(%d) = %v",
						mean, m2, m3, k, c2.Moment(k))
				}
			}
		}
	})
}
