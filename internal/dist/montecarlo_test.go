package dist

import (
	"math"
	"sort"
	"testing"

	"repro/internal/xrand"
)

// Monte-Carlo convergence tests with fixed seeds: sample moments must land
// within 6 standard errors of the analytic moments (the standard errors
// themselves computed from analytic higher moments), and the empirical
// mass below an analytic quantile must match its probability. Fixed seeds
// keep the tests deterministic; 6 sigma leaves no flakiness margin even if
// the underlying generator changes.

func mcCases() map[string]Distribution {
	return map[string]Distribution{
		"exponential": NewExponential(1.7),
		"uniform":     NewUniform(0.5, 4),
		"pareto":      NewBoundedPareto(1.5, 1, 64),
		"hyperexp":    NewHyperExp([]float64{0.9, 0.1}, []float64{3, 0.2}),
		"coxian2":     Coxian2{Mu1: 4, Mu2: 0.5, P: 0.25},
		"coxian-erlang-mix": NewCoxian(
			[]float64{5, 5, 5, 5}, []float64{1, 1, 0.3}),
	}
}

// mcNames returns the case names sorted, so each case gets the same seed
// on every run (map iteration order would scramble the pairing and make a
// failure irreproducible).
func mcNames(cases map[string]Distribution) []string {
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func TestMonteCarloMoments(t *testing.T) {
	const n = 400000
	cases := mcCases()
	seed := uint64(2020) // SPAA '20
	for _, name := range mcNames(cases) {
		d := cases[name]
		r := xrand.New(seed)
		var s1, s2 float64
		for i := 0; i < n; i++ {
			x := d.Sample(r)
			s1 += x
			s2 += x * x
		}
		s1 /= n
		s2 /= n
		m1, m2, m4 := d.Moment(1), d.Moment(2), d.Moment(4)
		seMean := math.Sqrt((m2 - m1*m1) / n)
		seM2 := math.Sqrt((m4 - m2*m2) / n)
		if math.Abs(s1-m1) > 6*seMean {
			t.Errorf("%s (seed %d): sample mean %v vs analytic %v (se %v)", name, seed, s1, m1, seMean)
		}
		if math.Abs(s2-m2) > 6*seM2 {
			t.Errorf("%s (seed %d): sample E[X^2] %v vs analytic %v (se %v)", name, seed, s2, m2, seM2)
		}
		seed++
	}
}

func TestMonteCarloQuantileMass(t *testing.T) {
	const n = 200000
	cases := mcCases()
	seed := uint64(42)
	for _, name := range mcNames(cases) {
		d := cases[name]
		for _, p := range []float64{0.1, 0.5, 0.95} {
			q := d.Quantile(p)
			r := xrand.New(seed)
			below := 0
			for i := 0; i < n; i++ {
				if d.Sample(r) <= q {
					below++
				}
			}
			got := float64(below) / n
			se := math.Sqrt(p * (1 - p) / n)
			if math.Abs(got-p) > 6*se {
				t.Errorf("%s (seed %d): mass below Quantile(%v) = %v (se %v)", name, seed, p, got, se)
			}
			seed++
		}
	}
}

// TestSampleDeterminism: equal seeds give bit-identical sample streams —
// the repository-wide reproducibility requirement.
func TestSampleDeterminism(t *testing.T) {
	for name, d := range mcCases() {
		a, b := xrand.New(7), xrand.New(7)
		for i := 0; i < 1000; i++ {
			if x, y := d.Sample(a), d.Sample(b); x != y {
				t.Fatalf("%s: diverged at draw %d: %v vs %v", name, i, x, y)
			}
		}
	}
}
