package dist

import (
	"math"
	"strings"
	"testing"
)

// Table-driven fitter tests covering every branch: cv2 < 1 (including the
// Erlang-mixture regime cv2 < 1/2), cv2 = 1, cv2 > 1, and degenerate
// inputs that must return errors — never NaN/Inf parameters.

func TestFitCoxianTable(t *testing.T) {
	cases := []struct {
		name      string
		mean, cv2 float64
		phases    int // expected phase count, 0 = don't care
	}{
		{"erlang-regime-tiny-cv2", 2, 0.1, 10},
		{"erlang-regime", 1, 0.3, 4},
		{"erlang-boundary", 0.5, 0.5, 2},
		{"two-phase-low", 3, 0.7, 2},
		{"exponential-cv2", 1, 1, 2},
		{"heavy", 0.25, 4, 2},
		{"very-heavy", 10, 50, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := FitCoxian(tc.mean, tc.cv2)
			if err != nil {
				t.Fatal(err)
			}
			if tc.phases != 0 && len(c.Rates) != tc.phases {
				t.Fatalf("got %d phases, want %d", len(c.Rates), tc.phases)
			}
			m1, m2 := c.Moment(1), c.Moment(2)
			if relDiff(m1, tc.mean) > 1e-9 {
				t.Errorf("mean %v, want %v", m1, tc.mean)
			}
			if got := m2/(m1*m1) - 1; relDiff(got, tc.cv2) > 1e-8 {
				t.Errorf("cv2 %v, want %v", got, tc.cv2)
			}
		})
	}
}

func TestFitCoxianDegenerate(t *testing.T) {
	cases := []struct {
		name      string
		mean, cv2 float64
	}{
		{"zero-mean", 0, 1},
		{"negative-mean", -1, 1},
		{"nan-mean", math.NaN(), 1},
		{"inf-mean", math.Inf(1), 1},
		{"zero-cv2", 1, 0},
		{"negative-cv2", 1, -2},
		{"nan-cv2", 1, math.NaN()},
		{"inf-cv2", 1, math.Inf(1)},
		{"cv2-below-phase-cap", 1, 1e-9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FitCoxian(tc.mean, tc.cv2); err == nil {
				t.Fatalf("FitCoxian(%v, %v) succeeded, want error", tc.mean, tc.cv2)
			}
		})
	}
}

func TestFitHyperExpBalancedTable(t *testing.T) {
	cases := []struct {
		name   string
		m1, m2 float64
	}{
		{"busy-period", 2, 16},  // cv2 = 3
		{"cv2-exactly-1", 1, 2}, // collapses to exponential
		{"mild", 0.5, 0.6},      // cv2 = 1.4
		{"extreme", 1, 1000},    // cv2 = 999
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := FitHyperExpBalanced(tc.m1, tc.m2)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(h.Moment(1)-tc.m1) > 1e-9*tc.m1 || math.Abs(h.Moment(2)-tc.m2) > 1e-9*tc.m2 {
				t.Errorf("moments (%v, %v), want (%v, %v)", h.Moment(1), h.Moment(2), tc.m1, tc.m2)
			}
			// Balanced means: p1/r1 == p2/r2.
			if relDiff(h.Probs[0]/h.Rates[0], h.Probs[1]/h.Rates[1]) > 1e-9 {
				t.Errorf("branch means unbalanced: %v vs %v",
					h.Probs[0]/h.Rates[0], h.Probs[1]/h.Rates[1])
			}
		})
	}
}

func TestFitHyperExpBalancedDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		m1, m2 float64
	}{
		{"cv2-below-1", 1, 1.5},
		{"zero-variance", 1, 1},
		{"zero-mean", 0, 1},
		{"negative-mean", -2, 1},
		{"zero-m2", 1, 0},
		{"nan", math.NaN(), 1},
		{"inf-m2", 1, math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FitHyperExpBalanced(tc.m1, tc.m2); err == nil {
				t.Fatalf("FitHyperExpBalanced(%v, %v) succeeded, want error", tc.m1, tc.m2)
			}
		})
	}
}

func TestFitCoxian2Table(t *testing.T) {
	cases := []struct {
		name       string
		m1, m2, m3 float64
		relTol     float64
	}{
		{"busy-period-rho-0.5", 2, 16, 288, 1e-6},
		// M/M/1 busy period moments for lambda=3.6, mu=4 (rho=0.9):
		// m1 = 1/(mu-lambda), m2 = 2mu/(mu-lambda)^3, m3 = 6mu(mu+lambda)/(mu-lambda)^5.
		{"busy-period-rho-0.9", 2.5, 125, 17812.5, 1e-6},
		{"hyperexp-moments", 0.65, 0.95, 2.325, 1e-6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := FitCoxian2(tc.m1, tc.m2, tc.m3)
			if err != nil {
				t.Fatal(err)
			}
			if !c.valid() {
				t.Fatalf("invalid parameters %+v", c)
			}
			for k, want := range map[int]float64{1: tc.m1, 2: tc.m2, 3: tc.m3} {
				if relDiff(c.Moment(k), want) > tc.relTol {
					t.Errorf("Moment(%d) = %v, want %v", k, c.Moment(k), want)
				}
			}
		})
	}
}

func TestFitCoxian2Exponential(t *testing.T) {
	// Exact exponential moments short-circuit to P = 0, Mu1 = 1/m1.
	c, err := FitCoxian2(0.5, 0.5, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if c.P != 0 || relDiff(c.Mu1, 2) > 1e-12 {
		t.Fatalf("exponential moments gave %+v, want P=0 Mu1=2", c)
	}
}

func TestFitCoxian2Degenerate(t *testing.T) {
	cases := []struct {
		name       string
		m1, m2, m3 float64
		errPart    string
	}{
		{"no-variance", 1, 1, 1, "no variance"},
		{"sub-exponential-m2", 2, 3, 10, "no variance"}, // m2 < m1^2
		{"not-representable", 1, 3, 6, "not Coxian2-representable"},
		{"zero-m1", 0, 1, 1, "finite and positive"},
		{"negative-m3", 1, 3, -5, "finite and positive"},
		{"nan", math.NaN(), 2, 6, "finite and positive"},
		{"inf", 1, math.Inf(1), 6, "finite and positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FitCoxian2(tc.m1, tc.m2, tc.m3)
			if err == nil {
				t.Fatalf("FitCoxian2(%v, %v, %v) succeeded, want error", tc.m1, tc.m2, tc.m3)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

// TestConstructorPanics: invalid static parameters are programming errors
// and panic (matching the xrand and workload idiom), unlike fitter targets
// which are data and return errors.
func TestConstructorPanics(t *testing.T) {
	mustPanic(t, "NewExponential(0)", func() { NewExponential(0) })
	mustPanic(t, "NewExponential(NaN)", func() { NewExponential(math.NaN()) })
	mustPanic(t, "NewUniform(2,1)", func() { NewUniform(2, 1) })
	mustPanic(t, "NewUniform(-1,1)", func() { NewUniform(-1, 1) })
	mustPanic(t, "NewUniform(NaN,1)", func() { NewUniform(math.NaN(), 1) })
	mustPanic(t, "NewBoundedPareto(0,1,2)", func() { NewBoundedPareto(0, 1, 2) })
	mustPanic(t, "NewBoundedPareto(1,0,2)", func() { NewBoundedPareto(1, 0, 2) })
	mustPanic(t, "NewBoundedPareto(1,2,2)", func() { NewBoundedPareto(1, 2, 2) })
	mustPanic(t, "NewBoundedPareto(1,1,Inf)", func() { NewBoundedPareto(1, 1, math.Inf(1)) })
	mustPanic(t, "NewHyperExp-len", func() { NewHyperExp([]float64{1}, []float64{1, 2}) })
	mustPanic(t, "NewHyperExp-empty", func() { NewHyperExp(nil, nil) })
	mustPanic(t, "NewHyperExp-negprob", func() { NewHyperExp([]float64{-0.5, 1.5}, []float64{1, 1}) })
	mustPanic(t, "NewHyperExp-sum", func() { NewHyperExp([]float64{0.3, 0.3}, []float64{1, 1}) })
	mustPanic(t, "NewHyperExp-rate", func() { NewHyperExp([]float64{0.5, 0.5}, []float64{1, 0}) })
	mustPanic(t, "NewCoxian-len", func() { NewCoxian([]float64{1, 2}, nil) })
	mustPanic(t, "NewCoxian-empty", func() { NewCoxian(nil, nil) })
	mustPanic(t, "NewCoxian-rate", func() { NewCoxian([]float64{0, 1}, []float64{0.5}) })
	mustPanic(t, "NewCoxian-cont", func() { NewCoxian([]float64{1, 1}, []float64{1.5}) })
	mustPanic(t, "Moment(-1)", func() { NewExponential(1).Moment(-1) })
	mustPanic(t, "Quantile(-0.1)", func() { NewExponential(1).Quantile(-0.1) })
	mustPanic(t, "Quantile(1.1)", func() { NewExponential(1).Quantile(1.1) })
	mustPanic(t, "Quantile(NaN)", func() { NewExponential(1).Quantile(math.NaN()) })
}
