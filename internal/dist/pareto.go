package dist

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// BoundedPareto is the Pareto distribution with shape Alpha truncated to
// [Lo, Hi] (density proportional to x^(-Alpha-1) on the support). It models
// the heavy-tailed job sizes of the ML-platform scenario: most jobs are
// small, a few are enormous, but sizes are capped so every moment exists.
type BoundedPareto struct {
	Alpha, Lo, Hi float64
}

// NewBoundedPareto returns the bounded Pareto with shape alpha on [lo, hi].
// It panics unless alpha > 0 and 0 < lo < hi are all finite.
func NewBoundedPareto(alpha, lo, hi float64) BoundedPareto {
	if !isFinitePos(alpha) || !isFinitePos(lo) || !isFinitePos(hi) || !(lo < hi) {
		panic(fmt.Sprintf("dist: NewBoundedPareto(%v, %v, %v), want alpha > 0 and 0 < lo < hi finite",
			alpha, lo, hi))
	}
	return BoundedPareto{Alpha: alpha, Lo: lo, Hi: hi}
}

// truncMass returns 1 - (Lo/Hi)^Alpha, the unnormalized mass on [Lo, Hi].
func (b BoundedPareto) truncMass() float64 {
	return 1 - math.Pow(b.Lo/b.Hi, b.Alpha)
}

// Mean returns Moment(1).
func (b BoundedPareto) Mean() float64 { return b.Moment(1) }

// Moment returns E[X^k]. Unlike the unbounded Pareto, every moment is
// finite; the k = Alpha resonance is the logarithmic limit of the general
// formula.
func (b BoundedPareto) Moment(k int) float64 {
	checkMomentOrder(k)
	if k == 0 {
		return 1
	}
	kk := float64(k)
	c := b.Alpha * math.Pow(b.Lo, b.Alpha) / b.truncMass()
	if math.Abs(kk-b.Alpha) < 1e-9 {
		// lim_{a->k} (Hi^(k-a) - Lo^(k-a))/(k-a) = ln(Hi/Lo).
		return c * math.Log(b.Hi/b.Lo)
	}
	return c * (math.Pow(b.Hi, kk-b.Alpha) - math.Pow(b.Lo, kk-b.Alpha)) / (kk - b.Alpha)
}

// CDF returns (1 - (Lo/x)^Alpha) / (1 - (Lo/Hi)^Alpha), clamped to the
// support.
func (b BoundedPareto) CDF(x float64) float64 {
	switch {
	case x <= b.Lo:
		return 0
	case x >= b.Hi:
		return 1
	default:
		return (1 - math.Pow(b.Lo/x, b.Alpha)) / b.truncMass()
	}
}

// Quantile inverts the CDF: Lo * (1 - p*(1 - (Lo/Hi)^Alpha))^(-1/Alpha).
func (b BoundedPareto) Quantile(p float64) float64 {
	checkProb(p)
	if p >= 1 {
		return b.Hi
	}
	x := b.Lo * math.Pow(1-p*b.truncMass(), -1/b.Alpha)
	return math.Min(x, b.Hi)
}

// Sample draws by inverse transform, so one uniform from r per variate.
func (b BoundedPareto) Sample(r *xrand.Rand) float64 {
	return b.Quantile(r.Float64())
}
