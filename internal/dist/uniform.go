package dist

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Uniform is the continuous uniform distribution on [Lo, Hi], used by the
// Appendix A batch experiments for moderately variable job sizes.
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns the uniform distribution on [lo, hi]. It panics
// unless lo and hi are finite with lo < hi and lo >= 0 (job sizes are
// nonnegative throughout the repository).
func NewUniform(lo, hi float64) Uniform {
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || !(lo < hi) || lo < 0 {
		panic(fmt.Sprintf("dist: NewUniform(%v, %v), want 0 <= lo < hi finite", lo, hi))
	}
	return Uniform{Lo: lo, Hi: hi}
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Moment returns E[X^k] = (Hi^(k+1) - Lo^(k+1)) / ((k+1)(Hi-Lo)).
func (u Uniform) Moment(k int) float64 {
	checkMomentOrder(k)
	kk := float64(k)
	return (math.Pow(u.Hi, kk+1) - math.Pow(u.Lo, kk+1)) / ((kk + 1) * (u.Hi - u.Lo))
}

// CDF returns the linear ramp from Lo to Hi, clamped outside the support.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Quantile returns Lo + p*(Hi-Lo).
func (u Uniform) Quantile(p float64) float64 {
	checkProb(p)
	return u.Lo + p*(u.Hi-u.Lo)
}

// Sample draws a uniform variate from r.
func (u Uniform) Sample(r *xrand.Rand) float64 {
	return u.Lo + r.Float64()*(u.Hi-u.Lo)
}
