package dist

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Coxian2 is the two-phase Coxian distribution of the paper's Section 5.2
// busy-period transformation: an Exp(Mu1) phase, followed with probability
// P by an Exp(Mu2) phase. The three free parameters are exactly enough to
// match the first three moments of the M/M/1 busy period (Figures 3c, 7c).
type Coxian2 struct {
	Mu1, Mu2 float64
	P        float64
}

// Mean returns 1/Mu1 + P/Mu2.
func (c Coxian2) Mean() float64 { return 1/c.Mu1 + c.P/c.Mu2 }

// Moment returns E[X^k] for X = Exp(Mu1) + Bernoulli(P)*Exp(Mu2) by the
// binomial expansion of the independent sum.
func (c Coxian2) Moment(k int) float64 {
	checkMomentOrder(k)
	m := factorial(k) / math.Pow(c.Mu1, float64(k))
	for j := 1; j <= k; j++ {
		m += c.P * binom(k, j) *
			factorial(k-j) / math.Pow(c.Mu1, float64(k-j)) *
			factorial(j) / math.Pow(c.Mu2, float64(j))
	}
	return m
}

// CDF returns P(X <= x) in closed form: a (1-P, P) mixture of Exp(Mu1)
// and the hypoexponential Exp(Mu1)+Exp(Mu2). The hypoexponential term is
// evaluated as 1 - e^(-a*x)(1 + a*phi) with a = min(Mu1, Mu2), d = |Mu1-Mu2|
// and phi = -expm1(-d*x)/d: algebraically identical to the textbook
// (Mu2*e^(-Mu1*x) - Mu1*e^(-Mu2*x))/(Mu2-Mu1) but free of its catastrophic
// cancellation as Mu1 -> Mu2, so no accuracy cliff near equal rates.
func (c Coxian2) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	a, b := c.Mu1, c.Mu2 // the hypoexponential sum is symmetric in the rates
	if a > b {
		a, b = b, a
	}
	phi := x // d -> 0 limit (Erlang-2)
	if d := b - a; d > 0 {
		phi = -math.Expm1(-d*x) / d
	}
	ea := math.Exp(-a * x)
	hypo := 1 - ea*(1+a*phi)
	return (1-c.P)*(1-math.Exp(-c.Mu1*x)) + c.P*hypo
}

// Quantile inverts the CDF numerically.
func (c Coxian2) Quantile(p float64) float64 {
	checkProb(p)
	if p >= 1 {
		return math.Inf(1)
	}
	return bisectQuantile(c.CDF, p, c.Mean())
}

// Sample draws the first phase and, with probability P, the second.
func (c Coxian2) Sample(r *xrand.Rand) float64 {
	x := r.Exp(c.Mu1)
	if r.Bernoulli(c.P) {
		x += r.Exp(c.Mu2)
	}
	return x
}

// valid reports whether the parameters describe a proper distribution.
func (c Coxian2) valid() bool {
	return isFinitePos(c.Mu1) && isFinitePos(c.Mu2) && c.P >= 0 && c.P <= 1
}

// FitCoxian2 fits a Coxian2 to the first three raw moments (m1, m2, m3).
// Writing x = 1/Mu1 and u = 1/Mu2, eliminating P from the moment equations
// leaves the quadratic
//
//	(m2/2 - m1^2) x^2 + (m1*m2/2 - m3/6) x + (m1*m3/6 - m2^2/4) = 0,
//
// after which u = (m2/2 - x*m1)/(m1 - x) and P = (m1 - x)/u. A root is
// accepted only if it yields Mu1, Mu2 > 0 and P in [0, 1]; moment triples
// outside the Coxian2-representable region return an error. Exponential
// moments (cv2 = 1) short-circuit to P = 0.
func FitCoxian2(m1, m2, m3 float64) (Coxian2, error) {
	if !isFinitePos(m1) || !isFinitePos(m2) || !isFinitePos(m3) {
		return Coxian2{}, fmt.Errorf("dist: FitCoxian2(%v, %v, %v): moments must be finite and positive", m1, m2, m3)
	}
	if m2 <= m1*m1 {
		return Coxian2{}, fmt.Errorf("dist: FitCoxian2(%v, %v, %v): m2 <= m1^2 leaves no variance", m1, m2, m3)
	}
	// Exponential short-circuit: both higher moments within 1e-12 relative.
	if math.Abs(m2-2*m1*m1) <= 1e-12*m2 && math.Abs(m3-6*m1*m1*m1) <= 1e-12*m3 {
		return Coxian2{Mu1: 1 / m1, Mu2: 1 / m1, P: 0}, nil
	}

	a := m2/2 - m1*m1
	b := m1*m2/2 - m3/6
	cc := m1*m3/6 - m2*m2/4

	var roots []float64
	if math.Abs(a) <= 1e-14*(m2/2+m1*m1) {
		// cv2 == 1 exactly but m3 off-exponential: the quadratic degenerates.
		if b != 0 {
			roots = []float64{-cc / b}
		}
	} else {
		disc := b*b - 4*a*cc
		if disc < 0 {
			return Coxian2{}, fmt.Errorf("dist: FitCoxian2(%v, %v, %v): no real phase rates (discriminant %v)", m1, m2, m3, disc)
		}
		// Citardauq form: when |4ac| << b^2 the naive (-b±s)/2a cancels
		// catastrophically on the small root; q/a and cc/q are both stable.
		s := math.Sqrt(disc)
		q := -(b + math.Copysign(s, b)) / 2
		if q != 0 {
			roots = []float64{q / a, cc / q}
		}
	}

	for _, x := range roots {
		if !(x > 0) || !(x < m1) {
			continue
		}
		u := (m2/2 - x*m1) / (m1 - x)
		if !(u > 0) {
			continue
		}
		c := Coxian2{Mu1: 1 / x, Mu2: 1 / u, P: (m1 - x) / u}
		// Accept only if the parameters actually reproduce the targets:
		// near the representability boundary the algebra above can be too
		// ill-conditioned to honor the fitter's contract.
		if c.valid() &&
			relDiff(c.Moment(1), m1) < 1e-7 &&
			relDiff(c.Moment(2), m2) < 1e-7 &&
			relDiff(c.Moment(3), m3) < 1e-7 {
			return c, nil
		}
	}
	return Coxian2{}, fmt.Errorf("dist: FitCoxian2(%v, %v, %v): moment triple is not Coxian2-representable", m1, m2, m3)
}

// Coxian is a general n-phase Coxian: phase i has rate Rates[i], and after
// completing phase i the variate continues to phase i+1 with probability
// Cont[i] (len(Cont) == len(Rates)-1) or finishes. It generalizes Coxian2
// to the low-variability regime (cv2 < 1/2) that two phases cannot reach,
// where the two-moment fit needs an Erlang mixture with many phases.
type Coxian struct {
	Rates []float64
	Cont  []float64
}

// NewCoxian returns the Coxian with the given phase rates and continuation
// probabilities. It panics unless len(rates) >= 1, len(cont) ==
// len(rates)-1, every rate is finite and positive, and every continuation
// probability is in [0, 1].
func NewCoxian(rates, cont []float64) Coxian {
	if len(rates) == 0 || len(cont) != len(rates)-1 {
		panic(fmt.Sprintf("dist: NewCoxian: %d rates need %d continuation probs, got %d",
			len(rates), len(rates)-1, len(cont)))
	}
	for i, r := range rates {
		if !isFinitePos(r) {
			panic(fmt.Sprintf("dist: NewCoxian phase %d rate %v", i, r))
		}
	}
	for i, p := range cont {
		if !(p >= 0 && p <= 1) {
			panic(fmt.Sprintf("dist: NewCoxian continuation %d prob %v", i, p))
		}
	}
	return Coxian{
		Rates: append([]float64(nil), rates...),
		Cont:  append([]float64(nil), cont...),
	}
}

// moments returns E[T^j] for j = 0..k, where T is the absorption time from
// phase 1. Computed by the backward recursion over phases: with T_i the
// time-to-absorb from phase i and c_i = Cont[i],
//
//	E[T_i^j] = j!/mu_i^j + c_i * sum_{l=1}^{j} C(j,l) (j-l)!/mu_i^(j-l) E[T_{i+1}^l].
func (c Coxian) moments(k int) []float64 {
	n := len(c.Rates)
	cur := make([]float64, k+1)  // moments of T_{i+1}
	next := make([]float64, k+1) // moments of T_i being built
	for i := n - 1; i >= 0; i-- {
		mu := c.Rates[i]
		cont := 0.0
		if i < n-1 {
			cont = c.Cont[i]
		}
		next[0] = 1
		for j := 1; j <= k; j++ {
			m := factorial(j) / math.Pow(mu, float64(j))
			if cont > 0 {
				for l := 1; l <= j; l++ {
					m += cont * binom(j, l) * factorial(j-l) / math.Pow(mu, float64(j-l)) * cur[l]
				}
			}
			next[j] = m
		}
		cur, next = next, cur
	}
	return cur[:k+1]
}

// Mean returns the expected absorption time.
func (c Coxian) Mean() float64 { return c.moments(1)[1] }

// Moment returns E[X^k].
func (c Coxian) Moment(k int) float64 {
	checkMomentOrder(k)
	return c.moments(k)[k]
}

// CDF evaluates P(X <= x). One and two phases reduce to the exponential
// and Coxian2 closed forms (exact for any rate ratio). Three or more
// phases use uniformization of the underlying absorbing Markov chain:
// with Lambda = max rate, the survival probability is a Poisson(Lambda*x)
// mixture of the discrete chain's alive-mass sequence, truncated once the
// remaining Poisson tail drops below 1e-14 — accurate to ~1e-13 for any
// phase structure, including the repeated-rate Erlang mixtures partial
// fractions cannot handle. The iteration budget scales with Lambda*x
// (the tail criterion always fires by Lambda*x + O(sqrt(Lambda*x))), with
// a hard cap only against pathological multi-phase rate ratios; if the
// cap ever bites, the bracketed remainder's midpoint is returned rather
// than a silently clamped 1.
func (c Coxian) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	n := len(c.Rates)
	if n == 1 {
		return -math.Expm1(-c.Rates[0] * x)
	}
	if n == 2 {
		return Coxian2{Mu1: c.Rates[0], Mu2: c.Rates[1], P: c.Cont[0]}.CDF(x)
	}
	lam := 0.0
	for _, r := range c.Rates {
		lam = math.Max(lam, r)
	}
	lx := lam * x
	// v[i] = P(chain in phase i after m uniformized jumps, not absorbed).
	v := make([]float64, n)
	w := make([]float64, n)
	v[0] = 1
	alive := 1.0
	// Poisson(lx) pmf tracked in log space so that large lx (many equal-rate
	// phases) does not underflow the m=0 term and zero the whole series.
	logTerm := -lx
	cdfTail := 1.0 // 1 - sum of Poisson pmf up to m
	surv := 0.0
	// The Poisson mass is exhausted by m ~ lx + 40*sqrt(lx); the hard cap
	// only guards absurd multi-phase rate ratios (lambda*x > ~5e7).
	maxIter := 50_000_000
	if adaptive := int(lx+40*math.Sqrt(lx+1)) + 200; adaptive < maxIter {
		maxIter = adaptive
	}
	for m := 0; ; m++ {
		if m > 0 {
			logTerm += math.Log(lx / float64(m))
		}
		term := math.Exp(logTerm)
		surv += term * alive
		cdfTail -= term
		if cdfTail*alive < 1e-14 || cdfTail < 0 {
			break
		}
		// One uniformized jump.
		for i := range w {
			w[i] = 0
		}
		for i := 0; i < n; i++ {
			if v[i] == 0 {
				continue
			}
			stay := 1 - c.Rates[i]/lam
			w[i] += v[i] * stay
			if i < n-1 {
				w[i+1] += v[i] * (c.Rates[i] / lam) * c.Cont[i]
			}
		}
		copy(v, w)
		alive = 0
		for _, vi := range v {
			alive += vi
		}
		if m >= maxIter {
			// Budget exhausted with mass still alive: the true survival lies
			// in [surv, surv + cdfTail*alive]; return the midpoint instead of
			// pretending the remaining mass has been absorbed.
			surv += cdfTail * alive / 2
			break
		}
	}
	return math.Min(1, math.Max(0, 1-surv))
}

// Quantile inverts the CDF numerically.
func (c Coxian) Quantile(p float64) float64 {
	checkProb(p)
	if p >= 1 {
		return math.Inf(1)
	}
	return bisectQuantile(c.CDF, p, c.Mean())
}

// Sample walks the phases, accumulating one exponential per visited phase.
func (c Coxian) Sample(r *xrand.Rand) float64 {
	x := 0.0
	for i := range c.Rates {
		x += r.Exp(c.Rates[i])
		if i == len(c.Rates)-1 || !r.Bernoulli(c.Cont[i]) {
			break
		}
	}
	return x
}

// maxFitPhases bounds the Erlang-mixture fit: cv2 below 1/maxFitPhases
// would need more phases than any workload in this repository justifies.
const maxFitPhases = 1000

// FitCoxian fits a Coxian to a target (mean, cv2), where cv2 is the
// squared coefficient of variation Var[X]/E[X]^2. Two regimes:
//
//   - cv2 >= 1/2: the canonical two-phase fit
//     Mu1 = 2/mean, P = 1/(2*cv2), Mu2 = 1/(mean*cv2).
//   - cv2 < 1/2: the Erlang(n-1, n) mixture (Tijms' fit) with
//     n = ceil(1/cv2) equal-rate phases, expressed as a Coxian whose last
//     continuation probability carries the mixture weight.
//
// Both reproduce the requested mean and cv2 exactly. Non-finite or
// non-positive targets, and cv2 small enough to require more than
// maxFitPhases phases, return an error — never NaN/Inf parameters.
func FitCoxian(mean, cv2 float64) (Coxian, error) {
	if !isFinitePos(mean) || !isFinitePos(cv2) {
		return Coxian{}, fmt.Errorf("dist: FitCoxian(mean=%v, cv2=%v): targets must be finite and positive", mean, cv2)
	}
	// The implied second moment must itself be a finite float64, or the
	// fitted distribution could not report its own moments.
	if !isFinitePos((1 + cv2) * mean * mean) {
		return Coxian{}, fmt.Errorf("dist: FitCoxian(mean=%v, cv2=%v): implied second moment overflows", mean, cv2)
	}
	if cv2 >= 0.5 {
		c := Coxian{
			Rates: []float64{2 / mean, 1 / (mean * cv2)},
			Cont:  []float64{1 / (2 * cv2)},
		}
		// Extreme targets can overflow mean*cv2 (or underflow a rate) even
		// though each input is individually finite.
		if !isFinitePos(c.Rates[0]) || !isFinitePos(c.Rates[1]) {
			return Coxian{}, fmt.Errorf("dist: FitCoxian(mean=%v, cv2=%v): phase rates overflow", mean, cv2)
		}
		return c, nil
	}
	n := int(math.Ceil(1 / cv2))
	if n > maxFitPhases {
		return Coxian{}, fmt.Errorf("dist: FitCoxian(mean=%v, cv2=%v): would need %d phases (max %d)", mean, cv2, n, maxFitPhases)
	}
	nf := float64(n)
	// Tijms' two-moment Erlang(n-1, n) fit: probability p of stopping after
	// n-1 phases, common rate mu = (n - p)/mean.
	p := (nf*cv2 - math.Sqrt(nf*(1+cv2)-nf*nf*cv2)) / (1 + cv2)
	if !(p >= 0 && p <= 1) {
		return Coxian{}, fmt.Errorf("dist: FitCoxian(mean=%v, cv2=%v): mixture weight %v outside [0,1]", mean, cv2, p)
	}
	mu := (nf - p) / mean
	if !isFinitePos(mu) {
		return Coxian{}, fmt.Errorf("dist: FitCoxian(mean=%v, cv2=%v): phase rate %v", mean, cv2, mu)
	}
	rates := make([]float64, n)
	cont := make([]float64, n-1)
	for i := range rates {
		rates[i] = mu
	}
	for i := range cont {
		cont[i] = 1
	}
	cont[n-2] = 1 - p
	return Coxian{Rates: rates, Cont: cont}, nil
}
