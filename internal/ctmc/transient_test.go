package ctmc

import (
	"math"
	"testing"
)

// TestTransientTwoState checks against the closed form for a two-state
// chain: p_1(t) for rates a (0->1) and b (1->0) starting in state 0 is
// (a/(a+b))(1 - e^{-(a+b)t}).
func TestTransientTwoState(t *testing.T) {
	a, b := 2.0, 3.0
	c := New(2)
	c.AddRate(0, 1, a)
	c.AddRate(1, 0, b)
	for _, tt := range []float64{0, 0.1, 0.5, 1, 5} {
		pt, err := c.Transient([]float64{1, 0}, tt, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		want := a / (a + b) * (1 - math.Exp(-(a+b)*tt))
		if math.Abs(pt[1]-want) > 1e-9 {
			t.Fatalf("p1(%v) = %v, want %v", tt, pt[1], want)
		}
	}
}

// TestTransientPureDeath: a single Exp(mu) job starting in state 1 is done
// by time t with probability 1 - e^{-mu t}.
func TestTransientPureDeath(t *testing.T) {
	c := New(2)
	c.AddRate(1, 0, 1.5)
	pt, err := c.Transient([]float64{0, 1}, 2.0, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-1.5 * 2.0)
	if math.Abs(pt[1]-want) > 1e-9 {
		t.Fatalf("survival %v, want %v", pt[1], want)
	}
}

// TestTransientConvergesToStationary: for large t the transient
// distribution equals the stationary one.
func TestTransientConvergesToStationary(t *testing.T) {
	c := buildMM1(0.6, 1.0, 60)
	pi, err := c.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	p0 := make([]float64, c.N())
	p0[0] = 1
	pt, err := c.Transient(p0, 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for s := range pi {
		if math.Abs(pt[s]-pi[s]) > 1e-6 {
			t.Fatalf("state %d: transient %v vs stationary %v", s, pt[s], pi[s])
		}
	}
}

// TestTransientMassConserved: the distribution sums to one at all times.
func TestTransientMassConserved(t *testing.T) {
	c := buildMM1(0.8, 1.0, 40)
	p0 := make([]float64, c.N())
	p0[5] = 1
	for _, tt := range []float64{0.01, 1, 10, 100} {
		pt, err := c.Transient(p0, tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range pt {
			sum += p
			if p < -1e-12 {
				t.Fatalf("negative probability at t=%v", tt)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("mass %v at t=%v", sum, tt)
		}
	}
}

// TestTransientMeanMonotoneRelaxation: starting empty, E[N(t)] rises
// monotonically toward the stationary mean for the M/M/1 chain.
func TestTransientMeanMonotoneRelaxation(t *testing.T) {
	c := buildMM1(0.7, 1.0, 80)
	p0 := make([]float64, c.N())
	p0[0] = 1
	// The M/M/1 relaxation time at rho=0.7 is 1/((1-sqrt(rho))^2 mu) ~ 37,
	// so run to several multiples of it.
	times := []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	means, err := c.TransientMean(p0, times, func(s int) float64 { return float64(s) }, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(means); i++ {
		if means[i] < means[i-1]-1e-9 {
			t.Fatalf("E[N(t)] decreased from %v to %v", means[i-1], means[i])
		}
	}
	pi, _ := c.StationaryDirect()
	limit := MeanReward(pi, func(s int) float64 { return float64(s) })
	if math.Abs(means[len(means)-1]-limit) > 0.01*limit {
		t.Fatalf("E[N(64)] = %v, stationary %v", means[len(means)-1], limit)
	}
}

// TestWarmupTimeScalesWithLoad uses the transient solver for the question
// the simulator's warmup parameter answers: relaxation to within 1% of the
// stationary mean takes longer at higher load.
func TestWarmupTimeScalesWithLoad(t *testing.T) {
	relax := func(rho float64) float64 {
		c := buildMM1(rho, 1.0, 400)
		pi, err := c.StationaryDirect()
		if err != nil {
			t.Fatal(err)
		}
		limit := MeanReward(pi, func(s int) float64 { return float64(s) })
		p0 := make([]float64, c.N())
		p0[0] = 1
		for _, tt := range []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
			m, err := c.TransientMean(p0, []float64{tt}, func(s int) float64 { return float64(s) }, 1e-10)
			if err != nil {
				t.Fatal(err)
			}
			if m[0] > 0.99*limit {
				return tt
			}
		}
		return math.Inf(1)
	}
	if relax(0.9) <= relax(0.5) {
		t.Fatal("high load should relax more slowly")
	}
}

func TestTransientInputValidation(t *testing.T) {
	c := buildMM1(0.5, 1, 10)
	if _, err := c.Transient([]float64{1}, 1, 1e-12); err == nil {
		t.Fatal("wrong p0 length accepted")
	}
	if _, err := c.Transient(make([]float64, c.N()), -1, 1e-12); err == nil {
		t.Fatal("negative time accepted")
	}
}

// TestTransient2DPolicyChain ties the transient solver to the policy
// chains: starting from the Theorem 6 initial state with no arrivals, the
// probability of being empty at time t approaches 1.
func TestTransient2DPolicyChain(t *testing.T) {
	m := Model2D{K: 2, MuI: 1, MuE: 2}
	chain := PolicyChain(m, IFAlloc, 2, 1)
	p0 := make([]float64, chain.N())
	p0[2*2+1] = 1 // state (2,1) with capE=1: index i*(capE+1)+j = 5
	pt, err := chain.Transient(p0, 50, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] < 0.999999 {
		t.Fatalf("not absorbed by t=50: P(empty)=%v", pt[0])
	}
}
