// Package ctmc provides a general continuous-time Markov chain engine:
// sparse chain construction, stationary solves (direct GTH elimination for
// small chains, Gauss-Seidel sweeps for large ones), and first-step analysis
// for absorbing chains.
//
// In this repository the engine plays three roles. It is the "ground truth"
// numeric baseline that the paper attributes to [7]: the 2D chain of
// Figure 1, truncated far from the origin, solved exactly (see
// PolicyChain in chain2d.go). It computes the Theorem 6 counterexample
// values 35/12 and 33/12 by first-step analysis. And it cross-validates the
// matrix-analytic pipeline of internal/qbd.
package ctmc

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrNotConverged reports that an iterative solve hit its sweep limit.
var ErrNotConverged = errors.New("ctmc: iterative solver did not converge")

// Chain is a finite-state CTMC under construction. States are dense integer
// indices in [0, N).
type Chain struct {
	n    int
	out  [][]edge // outgoing transitions per state
	diag []float64
}

type edge struct {
	to   int
	rate float64
}

// New returns a chain with n states and no transitions.
func New(n int) *Chain {
	if n <= 0 {
		panic("ctmc: chain needs at least one state")
	}
	return &Chain{n: n, out: make([][]edge, n), diag: make([]float64, n)}
}

// N returns the number of states.
func (c *Chain) N() int { return c.n }

// AddRate adds a transition from -> to with the given rate. Rates
// accumulate if called twice for the same pair. Zero rates are ignored;
// negative rates and self-loops panic.
func (c *Chain) AddRate(from, to int, rate float64) {
	if rate == 0 {
		return
	}
	if rate < 0 {
		panic(fmt.Sprintf("ctmc: negative rate %v", rate))
	}
	if from == to {
		panic("ctmc: self-loop in a CTMC")
	}
	c.out[from] = append(c.out[from], edge{to: to, rate: rate})
	c.diag[from] -= rate
}

// TotalRate returns the total outgoing rate of state s.
func (c *Chain) TotalRate(s int) float64 { return -c.diag[s] }

// Generator materializes the dense generator matrix Q (for small chains and
// tests).
func (c *Chain) Generator() *linalg.Matrix {
	q := linalg.NewMatrix(c.n, c.n)
	for s, edges := range c.out {
		for _, e := range edges {
			q.Add(s, e.to, e.rate)
		}
		q.Set(s, s, c.diag[s])
	}
	return q
}

// StationaryDirect solves pi Q = 0, sum(pi) = 1 with the GTH
// (Grassmann-Taksar-Heyman) elimination algorithm, which uses no
// subtractions and is numerically stable even for stiff chains. O(n^3):
// reserve for chains up to a few thousand states.
func (c *Chain) StationaryDirect() ([]float64, error) {
	n := c.n
	if n == 1 {
		return []float64{1}, nil
	}
	// Dense transition-rate matrix (off-diagonal only).
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	for s, edges := range c.out {
		for _, e := range edges {
			q[s][e.to] += e.rate
		}
	}
	// GTH elimination from the last state down.
	for l := n - 1; l >= 1; l-- {
		total := 0.0
		for j := 0; j < l; j++ {
			total += q[l][j]
		}
		if total <= 0 {
			return nil, fmt.Errorf("ctmc: state %d unreachable backward (reducible chain?)", l)
		}
		for i := 0; i < l; i++ {
			if q[i][l] == 0 {
				continue
			}
			f := q[i][l] / total
			for j := 0; j < l; j++ {
				if i != j {
					q[i][j] += f * q[l][j]
				}
			}
		}
	}
	// Back substitution.
	pi := make([]float64, n)
	pi[0] = 1
	for l := 1; l < n; l++ {
		total := 0.0
		for j := 0; j < l; j++ {
			total += q[l][j]
		}
		s := 0.0
		for i := 0; i < l; i++ {
			s += pi[i] * q[i][l]
		}
		pi[l] = s / total
	}
	normalize(pi)
	return pi, nil
}

// StationaryIterative solves pi Q = 0 by Gauss-Seidel sweeps on the balance
// equations, suitable for chains with 10^4..10^6 states. tol is the maximum
// absolute per-state change between sweeps; maxSweeps caps the work.
func (c *Chain) StationaryIterative(tol float64, maxSweeps int) ([]float64, error) {
	n := c.n
	// Build incoming adjacency once.
	in := make([][]edge, n)
	for s, edges := range c.out {
		for _, e := range edges {
			in[e.to] = append(in[e.to], edge{to: s, rate: e.rate})
		}
	}
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		delta := 0.0
		for s := 0; s < n; s++ {
			if c.diag[s] == 0 {
				continue // absorbing or isolated state
			}
			sum := 0.0
			for _, e := range in[s] {
				sum += pi[e.to] * e.rate
			}
			next := sum / -c.diag[s]
			if d := math.Abs(next - pi[s]); d > delta {
				delta = d
			}
			pi[s] = next
		}
		normalize(pi)
		if delta < tol {
			return pi, nil
		}
	}
	return nil, ErrNotConverged
}

// MeanReward returns sum_s pi[s] * reward(s).
func MeanReward(pi []float64, reward func(s int) float64) float64 {
	total := 0.0
	for s, p := range pi {
		total += p * reward(s)
	}
	return total
}

// AbsorptionReward solves first-step equations for an absorbing chain:
// given per-state reward accumulation rates reward(s) (absorbing states must
// have zero total outgoing rate), it returns for each state the expected
// total reward accumulated until absorption:
//
//	x_s = reward(s)/r_s + sum_t P(s->t) x_t,  r_s = total outgoing rate.
//
// Passing reward == number of jobs in state s computes the expected
// integral of N(t), i.e. the total response time of a finite job set — the
// quantity compared in the Theorem 6 counterexample.
func (c *Chain) AbsorptionReward(reward func(s int) float64) ([]float64, error) {
	n := c.n
	// Solve (-Q_TT) x = reward over transient states; absorbing states
	// (zero outgoing rate) have x = 0.
	transient := make([]int, 0, n)
	index := make([]int, n)
	for s := 0; s < n; s++ {
		index[s] = -1
		if c.diag[s] != 0 {
			index[s] = len(transient)
			transient = append(transient, s)
		}
	}
	m := len(transient)
	if m == 0 {
		return make([]float64, n), nil
	}
	a := linalg.NewMatrix(m, m)
	b := make([]float64, m)
	for row, s := range transient {
		a.Set(row, row, -c.diag[s])
		for _, e := range c.out[s] {
			if idx := index[e.to]; idx >= 0 {
				a.Add(row, idx, -e.rate)
			}
		}
		b[row] = reward(s)
	}
	x, err := linalg.Solve(a, b)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for row, s := range transient {
		out[s] = x[row]
	}
	return out, nil
}

func normalize(pi []float64) {
	sum := 0.0
	for _, v := range pi {
		sum += v
	}
	if sum <= 0 {
		return
	}
	for i := range pi {
		pi[i] /= sum
	}
}
