package ctmc

import (
	"fmt"
	"math"
)

// Transient computes the transient state distribution p(t) = p(0) e^{Qt}
// by uniformization (randomization): with uniformization rate u >= max
// total outgoing rate, e^{Qt} = sum_n Poisson(ut, n) P^n where
// P = I + Q/u. The Poisson sum is truncated when the accumulated
// probability mass exceeds 1 - tol.
//
// The repository uses it to measure how fast E[N(t)] approaches its
// stationary value under each policy — the principled way to size the
// simulator's warmup period — and as yet another independent check of the
// stationary solvers (p(t) must converge to pi).
func (c *Chain) Transient(p0 []float64, t, tol float64) ([]float64, error) {
	if len(p0) != c.n {
		return nil, fmt.Errorf("ctmc: initial distribution has %d entries, chain has %d states", len(p0), c.n)
	}
	if t < 0 {
		return nil, fmt.Errorf("ctmc: negative time %g", t)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	// Uniformization rate: slightly above the max exit rate to keep the
	// DTMC aperiodic.
	u := 0.0
	for s := 0; s < c.n; s++ {
		if r := -c.diag[s]; r > u {
			u = r
		}
	}
	if u == 0 || t == 0 {
		out := make([]float64, c.n)
		copy(out, p0)
		return out, nil
	}
	u *= 1.02

	// Iterate v_{n+1} = v_n P with P = I + Q/u, accumulating
	// out += w_n v_n where w_n are Poisson(ut) weights computed
	// iteratively in a numerically safe way (log-space start).
	v := make([]float64, c.n)
	copy(v, p0)
	next := make([]float64, c.n)
	out := make([]float64, c.n)

	ut := u * t
	// w_0 = e^{-ut}; for large ut this underflows, so run weights in
	// scaled form: track logw and renormalize through the loop.
	logw := -ut
	accum := 0.0
	for n := 0; ; n++ {
		w := math.Exp(logw)
		if w > 0 {
			for s := range out {
				out[s] += w * v[s]
			}
			accum += w
		}
		if accum >= 1-tol {
			break
		}
		if n > int(ut)+200+int(20*math.Sqrt(ut)) {
			// Far beyond the Poisson bulk; remaining mass is below
			// tol by Chernoff bounds, stop defensively.
			break
		}
		// v <- v P.
		for s := range next {
			next[s] = v[s] * (1 + c.diag[s]/u)
		}
		for s, edges := range c.out {
			vs := v[s]
			if vs == 0 {
				continue
			}
			for _, e := range edges {
				next[e.to] += vs * e.rate / u
			}
		}
		v, next = next, v
		logw += math.Log(ut) - math.Log(float64(n+1))
	}
	// Renormalize the truncated sum.
	sum := 0.0
	for _, p := range out {
		sum += p
	}
	if sum > 0 {
		for s := range out {
			out[s] /= sum
		}
	}
	return out, nil
}

// TransientMean returns sum_s p_s(t) * reward(s) at each requested time,
// reusing intermediate powers (each time computed independently; times
// should be few).
func (c *Chain) TransientMean(p0 []float64, times []float64, reward func(s int) float64, tol float64) ([]float64, error) {
	out := make([]float64, len(times))
	for i, t := range times {
		pt, err := c.Transient(p0, t, tol)
		if err != nil {
			return nil, err
		}
		out[i] = MeanReward(pt, reward)
	}
	return out, nil
}
