package ctmc

import (
	"math"
	"testing"

	"repro/internal/queueing"
)

// buildMM1 creates a truncated M/M/1 birth-death chain.
func buildMM1(lambda, mu float64, cap int) *Chain {
	c := New(cap + 1)
	for n := 0; n < cap; n++ {
		c.AddRate(n, n+1, lambda)
		c.AddRate(n+1, n, mu)
	}
	return c
}

func TestStationaryDirectMM1(t *testing.T) {
	lambda, mu := 0.6, 1.0
	c := buildMM1(lambda, mu, 200)
	pi, err := c.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	q := queueing.NewMM1(lambda, mu)
	for n := 0; n < 20; n++ {
		if math.Abs(pi[n]-q.StationaryProb(n)) > 1e-9 {
			t.Fatalf("pi[%d]=%v, want %v", n, pi[n], q.StationaryProb(n))
		}
	}
}

func TestStationaryIterativeMatchesDirect(t *testing.T) {
	c := buildMM1(0.8, 1.0, 300)
	direct, err := c.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	iter, err := c.StationaryIterative(1e-14, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for n := range direct {
		if math.Abs(direct[n]-iter[n]) > 1e-8 {
			t.Fatalf("solvers disagree at state %d: %v vs %v", n, direct[n], iter[n])
		}
	}
}

func TestStationaryMMk(t *testing.T) {
	// M/M/3 birth-death chain against the Erlang-C closed form.
	lambda, mu, k := 2.4, 1.0, 3
	c := New(401)
	for n := 0; n < 400; n++ {
		c.AddRate(n, n+1, lambda)
		c.AddRate(n+1, n, math.Min(float64(n+1), float64(k))*mu)
	}
	pi, err := c.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	en := 0.0
	for n, p := range pi {
		en += float64(n) * p
	}
	want := queueing.NewMMk(lambda, mu, k).MeanJobs()
	if math.Abs(en-want) > 1e-6 {
		t.Fatalf("M/M/3 E[N]: chain %v, formula %v", en, want)
	}
}

func TestGeneratorRowSums(t *testing.T) {
	c := buildMM1(0.5, 1, 10)
	q := c.Generator()
	for i := 0; i < q.Rows; i++ {
		sum := 0.0
		for j := 0; j < q.Cols; j++ {
			sum += q.At(i, j)
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("generator row %d sums to %v", i, sum)
		}
	}
}

func TestAddRatePanics(t *testing.T) {
	c := New(2)
	for name, fn := range map[string]func(){
		"negative": func() { c.AddRate(0, 1, -1) },
		"selfloop": func() { c.AddRate(0, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAbsorptionRewardSingleJob(t *testing.T) {
	// One job served at rate mu: expected time to absorption = 1/mu.
	c := New(2)
	c.AddRate(1, 0, 2.0)
	x, err := c.AbsorptionReward(func(s int) float64 { return float64(s) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[1]-0.5) > 1e-12 || x[0] != 0 {
		t.Fatalf("absorption rewards %v", x)
	}
}

func TestAbsorptionRewardTandem(t *testing.T) {
	// Two sequential exponential phases, reward = remaining jobs:
	// from state 2: 2*(1/mu) + 1*(1/mu) = 3/mu with mu=1.
	c := New(3)
	c.AddRate(2, 1, 1)
	c.AddRate(1, 0, 1)
	x, err := c.AbsorptionReward(func(s int) float64 { return float64(s) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[2]-3) > 1e-12 {
		t.Fatalf("tandem reward %v", x[2])
	}
}

// TestTheorem6Counterexample reproduces the exact values of the paper's
// Theorem 6: k=2, muE = 2 muI, no arrivals, start (2 inelastic, 1 elastic).
// Expected total response: IF = 35/12 / muI, EF = 33/12 / muI, so EF wins.
func TestTheorem6Counterexample(t *testing.T) {
	for _, muI := range []float64{1.0, 0.5, 3.0} {
		m := Model2D{K: 2, MuI: muI, MuE: 2 * muI}
		ifTotal, err := BatchTotalResponse(m, IFAlloc, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		efTotal, err := BatchTotalResponse(m, EFAlloc, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ifTotal-35.0/12/muI) > 1e-9 {
			t.Fatalf("muI=%v: IF total %v, want %v", muI, ifTotal, 35.0/12/muI)
		}
		if math.Abs(efTotal-33.0/12/muI) > 1e-9 {
			t.Fatalf("muI=%v: EF total %v, want %v", muI, efTotal, 33.0/12/muI)
		}
		if efTotal >= ifTotal {
			t.Fatal("counterexample inverted: EF should beat IF here")
		}
	}
}

// TestTheorem6DirectionFlips: with muI = muE the ordering flips back (IF at
// least as good), consistent with Theorem 1.
func TestTheorem6DirectionFlips(t *testing.T) {
	m := Model2D{K: 2, MuI: 1, MuE: 1}
	ifTotal, err := BatchTotalResponse(m, IFAlloc, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	efTotal, err := BatchTotalResponse(m, EFAlloc, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ifTotal > efTotal+1e-12 {
		t.Fatalf("IF (%v) worse than EF (%v) with equal rates", ifTotal, efTotal)
	}
}

func TestPolicyChainMatchesMMkForInelasticOnly(t *testing.T) {
	// With a negligible elastic arrival rate, IF's inelastic marginal is
	// M/M/k.
	m := Model2D{K: 3, LambdaI: 2.4, LambdaE: 1e-9, MuI: 1, MuE: 1}
	p, err := SolvePolicy(m, IFAlloc, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := queueing.NewMMk(2.4, 1, 3).MeanJobs()
	if math.Abs(p.MeanNI-want) > 1e-6 {
		t.Fatalf("E[N_I] %v, want %v", p.MeanNI, want)
	}
}

func TestPolicyChainEFElasticIsMM1(t *testing.T) {
	// Under EF the elastic class is an M/M/1 with service rate k*muE
	// regardless of the inelastic load.
	m := Model2D{K: 4, LambdaI: 1.0, LambdaE: 2.0, MuI: 1, MuE: 1}
	p, err := AutoSolvePolicy(m, EFAlloc, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	want := queueing.NewMM1(2.0, 4.0).MeanJobs()
	if math.Abs(p.MeanNE-want) > 1e-6 {
		t.Fatalf("EF E[N_E] %v, want M/M/1 value %v", p.MeanNE, want)
	}
}

func TestAutoSolveShrinksBoundaryMass(t *testing.T) {
	m := Model2D{K: 4, LambdaI: 1.6, LambdaE: 1.6, MuI: 1, MuE: 1} // rho=0.8
	p, err := AutoSolvePolicy(m, IFAlloc, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if p.BoundaryMass >= 1e-10 {
		t.Fatalf("boundary mass %v not under tolerance", p.BoundaryMass)
	}
	if p.MeanT <= 0 {
		t.Fatalf("nonsensical E[T] %v", p.MeanT)
	}
}

// TestIFOptimalAmongThresholds is the Theorem 5 optimality scan on exact
// (truncated-chain) values: with muI >= muE no threshold policy beats IF.
func TestIFOptimalAmongThresholds(t *testing.T) {
	m := Model2D{K: 4, LambdaI: 1.4, LambdaE: 1.4, MuI: 1.5, MuE: 1}
	ifPerf, err := SolvePolicy(m, IFAlloc, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	for cap := 0; cap < 4; cap++ {
		p, err := SolvePolicy(m, ThresholdAlloc(cap), 200, 200)
		if err != nil {
			t.Fatal(err)
		}
		if ifPerf.MeanT > p.MeanT+1e-9 {
			t.Fatalf("threshold %d beats IF: %v < %v", cap, p.MeanT, ifPerf.MeanT)
		}
	}
}

// TestEFBeatsIFExactWhenElasticSmaller mirrors Figure 4's blue region with
// exact chain solves.
func TestEFBeatsIFExactWhenElasticSmaller(t *testing.T) {
	// k=4, rho=0.9, muI=0.25, muE=1, lambdaI=lambdaE.
	lambda := 0.9 * 4 / (1/0.25 + 1/1.0)
	m := Model2D{K: 4, LambdaI: lambda, LambdaE: lambda, MuI: 0.25, MuE: 1}
	ifPerf, err := AutoSolvePolicy(m, IFAlloc, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	efPerf, err := AutoSolvePolicy(m, EFAlloc, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if efPerf.MeanT >= ifPerf.MeanT {
		t.Fatalf("expected EF (%v) < IF (%v) at muI=0.25", efPerf.MeanT, ifPerf.MeanT)
	}
}

func TestMeanReward(t *testing.T) {
	pi := []float64{0.25, 0.75}
	got := MeanReward(pi, func(s int) float64 { return float64(s * 2) })
	if math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("MeanReward %v", got)
	}
}

func TestBatchTotalResponseRejectsArrivals(t *testing.T) {
	m := Model2D{K: 2, LambdaI: 1, MuI: 1, MuE: 1}
	if _, err := BatchTotalResponse(m, IFAlloc, 1, 1); err == nil {
		t.Fatal("expected error for model with arrivals")
	}
}
