package ctmc

import (
	"fmt"
	"math"
)

// Model2D carries the parameters of the paper's two-class model for chain
// construction.
type Model2D struct {
	K                int
	LambdaI, LambdaE float64
	MuI, MuE         float64
}

// Rho returns the system load of Eq. 1.
func (m Model2D) Rho() float64 {
	return m.LambdaI/(float64(m.K)*m.MuI) + m.LambdaE/(float64(m.K)*m.MuE)
}

// Alloc is a stationary deterministic allocation rule: the total servers
// given to inelastic and to elastic jobs in state (i, j) on k servers. It is
// the pi_I(i,j), pi_E(i,j) of Section 2.
type Alloc func(k, i, j int) (ai, ae float64)

// IFAlloc is Inelastic-First: min(i, k) servers to inelastic jobs, the rest
// to elastic jobs when present.
func IFAlloc(k, i, j int) (float64, float64) {
	ai := math.Min(float64(i), float64(k))
	ae := 0.0
	if j > 0 {
		ae = float64(k) - ai
	}
	return ai, ae
}

// EFAlloc is Elastic-First: all k servers to elastic jobs when present,
// otherwise min(i, k) to inelastic jobs.
func EFAlloc(k, i, j int) (float64, float64) {
	if j > 0 {
		return 0, float64(k)
	}
	return math.Min(float64(i), float64(k)), 0
}

// ThresholdAlloc interpolates IF and EF: inelastic jobs get at most cap
// servers while elastic jobs are present (cap=k is IF, cap=0 is EF).
func ThresholdAlloc(cap int) Alloc {
	return func(k, i, j int) (float64, float64) {
		if j == 0 {
			return math.Min(float64(i), float64(k)), 0
		}
		ai := math.Min(float64(i), math.Min(float64(cap), float64(k)))
		return ai, float64(k) - ai
	}
}

// EquiAlloc splits servers evenly across jobs with the inelastic one-server
// cap and water-filling to elastic jobs.
func EquiAlloc(k, i, j int) (float64, float64) {
	n := i + j
	if n == 0 {
		return 0, 0
	}
	share := math.Min(1, float64(k)/float64(n))
	ai := share * float64(i)
	ae := 0.0
	if j > 0 {
		ae = float64(k) - ai
		if ae < 0 {
			ae = 0
		}
	}
	return ai, ae
}

// DeferAlloc is the idling policy of the Appendix B experiment: elastic jobs
// are served only when no inelastic job is present.
func DeferAlloc(k, i, j int) (float64, float64) {
	ai := math.Min(float64(i), float64(k))
	if i > 0 || j == 0 {
		return ai, 0
	}
	return 0, float64(k)
}

// PolicyChain builds the truncated 2D chain of Figure 1 for the given
// allocation rule. States (i, j) with i <= capI, j <= capE are indexed
// row-major; arrivals that would cross the truncation boundary are dropped
// (their rate is simply absent), so the result is exact for the truncated
// chain and approximates the infinite chain from below in load.
func PolicyChain(m Model2D, alloc Alloc, capI, capE int) *Chain {
	idx := func(i, j int) int { return i*(capE+1) + j }
	c := New((capI + 1) * (capE + 1))
	for i := 0; i <= capI; i++ {
		for j := 0; j <= capE; j++ {
			s := idx(i, j)
			if i < capI {
				c.AddRate(s, idx(i+1, j), m.LambdaI)
			}
			if j < capE {
				c.AddRate(s, idx(i, j+1), m.LambdaE)
			}
			ai, ae := alloc(m.K, i, j)
			validateAlloc(m.K, i, j, ai, ae)
			if i > 0 && ai > 0 {
				c.AddRate(s, idx(i-1, j), ai*m.MuI)
			}
			if j > 0 && ae > 0 {
				c.AddRate(s, idx(i, j-1), ae*m.MuE)
			}
		}
	}
	return c
}

func validateAlloc(k, i, j int, ai, ae float64) {
	if ai < -1e-12 || ae < -1e-12 || ai > float64(i)+1e-12 || ai+ae > float64(k)+1e-9 {
		panic(fmt.Sprintf("ctmc: invalid allocation (%v,%v) in state (%d,%d) on k=%d", ai, ae, i, j, k))
	}
	if j == 0 && ae != 0 {
		panic("ctmc: elastic allocation with no elastic jobs")
	}
}

// Perf summarizes a stationary solution of a truncated policy chain.
type Perf struct {
	MeanNI, MeanNE, MeanN float64
	MeanTI, MeanTE, MeanT float64
	// BoundaryMass is the stationary probability of the truncation edge;
	// results are trustworthy when it is tiny. BoundaryMassI and
	// BoundaryMassE split it by which edge leaks, so the adaptive solver
	// can grow only the dimension that needs it.
	BoundaryMass                 float64
	BoundaryMassI, BoundaryMassE float64
	CapI, CapE                   int
}

// SolvePolicy computes stationary performance of the truncated chain,
// choosing the direct solver for small chains and Gauss-Seidel otherwise.
func SolvePolicy(m Model2D, alloc Alloc, capI, capE int) (Perf, error) {
	chain := PolicyChain(m, alloc, capI, capE)
	var pi []float64
	var err error
	if chain.N() <= 1500 {
		pi, err = chain.StationaryDirect()
	} else {
		pi, err = chain.StationaryIterative(1e-13, 200000)
	}
	if err != nil {
		return Perf{}, err
	}
	return perfFrom(m, pi, capI, capE), nil
}

// AutoSolvePolicy grows the truncation geometrically until the boundary mass
// drops below boundTol, so callers get controlled accuracy without guessing
// caps. It starts from caps scaled to the load's rough queue lengths.
func AutoSolvePolicy(m Model2D, alloc Alloc, boundTol float64) (Perf, error) {
	capI, capE := 64, 64
	for iter := 0; iter < 10; iter++ {
		p, err := SolvePolicy(m, alloc, capI, capE)
		if err != nil {
			return Perf{}, err
		}
		if p.BoundaryMass < boundTol {
			return p, nil
		}
		// Grow only the leaking dimension(s): under priority policies
		// one class's queue is typically orders of magnitude longer
		// than the other's.
		grew := false
		if p.BoundaryMassI >= boundTol/2 {
			capI *= 2
			grew = true
		}
		if p.BoundaryMassE >= boundTol/2 {
			capE *= 2
			grew = true
		}
		if !grew {
			capI *= 2
			capE *= 2
		}
	}
	return Perf{}, fmt.Errorf("ctmc: truncation still leaking after growth (caps %d,%d)", capI, capE)
}

// BatchTotalResponse returns the expected total response time, i.e. the
// expected integral of N(t) until the system empties, when startI inelastic
// and startJ elastic jobs are present at time 0 and there are no further
// arrivals (set LambdaI = LambdaE = 0 in the model). This is the exact
// quantity computed by hand in the proof of Theorem 6: for k = 2,
// muE = 2 muI and start (2, 1), IF yields (35/12)/muI while EF yields
// (33/12)/muI.
func BatchTotalResponse(m Model2D, alloc Alloc, startI, startJ int) (float64, error) {
	if m.LambdaI != 0 || m.LambdaE != 0 {
		return 0, fmt.Errorf("ctmc: BatchTotalResponse requires a no-arrivals model")
	}
	capE := startJ
	chain := PolicyChain(m, alloc, startI, capE)
	rewards, err := chain.AbsorptionReward(func(s int) float64 {
		i, j := s/(capE+1), s%(capE+1)
		return float64(i + j)
	})
	if err != nil {
		return 0, err
	}
	return rewards[startI*(capE+1)+startJ], nil
}

func perfFrom(m Model2D, pi []float64, capI, capE int) Perf {
	var p Perf
	p.CapI, p.CapE = capI, capE
	for i := 0; i <= capI; i++ {
		for j := 0; j <= capE; j++ {
			prob := pi[i*(capE+1)+j]
			p.MeanNI += float64(i) * prob
			p.MeanNE += float64(j) * prob
			if i == capI || j == capE {
				p.BoundaryMass += prob
			}
			if i == capI {
				p.BoundaryMassI += prob
			}
			if j == capE {
				p.BoundaryMassE += prob
			}
		}
	}
	p.MeanN = p.MeanNI + p.MeanNE
	p.MeanTI = p.MeanNI / m.LambdaI
	p.MeanTE = p.MeanNE / m.LambdaE
	p.MeanT = p.MeanN / (m.LambdaI + m.LambdaE)
	return p
}
