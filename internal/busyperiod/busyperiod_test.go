package busyperiod

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/xrand"
)

func TestMomentsKnownValues(t *testing.T) {
	b := BusyPeriod{Lambda: 0.5, Mu: 1}
	m1, m2, m3 := b.Moments()
	if math.Abs(m1-2) > 1e-12 || math.Abs(m2-16) > 1e-12 || math.Abs(m3-288) > 1e-9 {
		t.Fatalf("moments (%v,%v,%v)", m1, m2, m3)
	}
}

func TestFitCoxianMatchesMoments(t *testing.T) {
	for _, b := range []BusyPeriod{
		{Lambda: 0.5, Mu: 1},
		{Lambda: 1.8, Mu: 4},   // rho = 0.45
		{Lambda: 3.6, Mu: 4},   // rho = 0.9
		{Lambda: 0.05, Mu: 10}, // rho = 0.005
	} {
		c, err := b.FitCoxian()
		if err != nil {
			t.Fatalf("%+v: %v", b, err)
		}
		m1, m2, m3 := b.Moments()
		if math.Abs(c.Moment(1)-m1) > 1e-6*m1 {
			t.Fatalf("%+v: m1 %v vs %v", b, c.Moment(1), m1)
		}
		if math.Abs(c.Moment(2)-m2) > 1e-6*m2 {
			t.Fatalf("%+v: m2 %v vs %v", b, c.Moment(2), m2)
		}
		if math.Abs(c.Moment(3)-m3) > 1e-5*m3 {
			t.Fatalf("%+v: m3 %v vs %v", b, c.Moment(3), m3)
		}
	}
}

// TestFitAgainstSimulatedBusyPeriods draws actual M/M/1 busy periods by
// simulation and compares their empirical mean with the fitted Coxian's.
func TestFitAgainstSimulatedBusyPeriods(t *testing.T) {
	b := BusyPeriod{Lambda: 0.7, Mu: 1}
	c, err := b.FitCoxian()
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(11)
	const trials = 200000
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		// Simulate one busy period: start with one job.
		njobs := 1
		clock := 0.0
		for njobs > 0 {
			rate := b.Lambda + b.Mu
			clock += r.Exp(rate)
			if r.Bernoulli(b.Lambda / rate) {
				njobs++
			} else {
				njobs--
			}
		}
		sum += clock
	}
	empirical := sum / trials
	if math.Abs(empirical-c.Mean()) > 0.05*c.Mean() {
		t.Fatalf("simulated busy period mean %v, Coxian %v", empirical, c.Mean())
	}
}

func TestCoxianRates(t *testing.T) {
	c := dist.Coxian2{Mu1: 4, Mu2: 0.5, P: 0.25}
	g1, g2, g3 := CoxianRates(c)
	if g1 != 3 || g2 != 1 || g3 != 0.5 {
		t.Fatalf("rates (%v,%v,%v)", g1, g2, g3)
	}
	// Conservation: total exit rate from b1 equals Mu1.
	if math.Abs((g1+g2)-c.Mu1) > 1e-12 {
		t.Fatal("b1 rates do not sum to Mu1")
	}
}

func TestFitExponentialMean(t *testing.T) {
	b := BusyPeriod{Lambda: 0.5, Mu: 1}
	e := b.FitExponential()
	if math.Abs(e.Mean()-2) > 1e-12 {
		t.Fatalf("exponential fit mean %v", e.Mean())
	}
}

func TestFitHyperExpTwoMoments(t *testing.T) {
	b := BusyPeriod{Lambda: 0.5, Mu: 1}
	h, err := b.FitHyperExp()
	if err != nil {
		t.Fatal(err)
	}
	m1, m2, _ := b.Moments()
	if math.Abs(h.Moment(1)-m1) > 1e-9 || math.Abs(h.Moment(2)-m2) > 1e-9 {
		t.Fatalf("hyperexp fit moments (%v,%v), want (%v,%v)", h.Moment(1), h.Moment(2), m1, m2)
	}
}
