// Package busyperiod implements the busy-period side of the paper's
// Section 5.2 transformation: the exact first three moments of an M/M/1
// busy period and their phase-type (Coxian-2) representation.
//
// Under Elastic-First, the time during which inelastic jobs receive no
// service is the busy period of the elastic M/M/1 (arrival rate lambdaE,
// service rate k*muE). Under Inelastic-First, the time during which elastic
// jobs receive no service is the excess period of the inelastic M/M/k above
// k-1 jobs, which is exactly an M/M/1 busy period with arrival rate lambdaI
// and service rate k*muI. Both are absorbed into a 1D chain by replacing
// the period with a Coxian-2 matched on three moments (Figures 3c and 7c).
package busyperiod

import (
	"repro/internal/dist"
	"repro/internal/queueing"
)

// BusyPeriod describes the M/M/1 busy period with the given arrival and
// service rates.
type BusyPeriod struct {
	Lambda, Mu float64
}

// Moments returns the first three raw moments of the busy period.
func (b BusyPeriod) Moments() (m1, m2, m3 float64) {
	return queueing.NewMM1(b.Lambda, b.Mu).BusyPeriodMoments()
}

// FitCoxian returns the two-phase Coxian matching the busy period's first
// three moments — the gamma1/gamma2/gamma3 construction of the paper.
func (b BusyPeriod) FitCoxian() (dist.Coxian2, error) {
	m1, m2, m3 := b.Moments()
	return dist.FitCoxian2(m1, m2, m3)
}

// FitExponential returns the one-moment (mean-matched) exponential stand-in
// for the busy period. It exists purely as the degraded baseline for the
// ablation benchmark quantifying why the paper matches three moments.
func (b BusyPeriod) FitExponential() dist.Exponential {
	m1, _, _ := b.Moments()
	return dist.NewExponential(1 / m1)
}

// FitHyperExp returns the two-moment balanced hyperexponential stand-in,
// the intermediate ablation point between one and three matched moments.
func (b BusyPeriod) FitHyperExp() (dist.HyperExp, error) {
	m1, m2, _ := b.Moments()
	return dist.FitHyperExpBalanced(m1, m2)
}

// CoxianRates unpacks a fitted Coxian into the three transition rates used
// in the Markov chains of Figures 3c and 7c:
//
//	gamma1: busy-period state b1 -> exit (completes after one phase)
//	gamma2: b1 -> b2 (continues into the second phase)
//	gamma3: b2 -> exit
func CoxianRates(c dist.Coxian2) (gamma1, gamma2, gamma3 float64) {
	return c.Mu1 * (1 - c.P), c.Mu1 * c.P, c.Mu2
}
