package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// FuzzFrameCodec feeds arbitrary bytes to the frame reader. Whatever the
// stream, the reader must never panic, and every frame it does accept must
// re-encode and re-read to the same compacted JSON (a full round-trip
// through WriteFrame). Oversized, negative and truncated frames must fail
// with errors, which the decode loop below exercises by construction.
func FuzzFrameCodec(f *testing.F) {
	f.Add([]byte("2\n{}\n"))
	f.Add([]byte("13\n{\"id\":3,\"v\":1}\n"))
	f.Add([]byte("0\n\n"))
	f.Add([]byte("-1\n{}\n"))
	f.Add([]byte("99999999999\n{}\n"))
	f.Add([]byte("4\nnull\n2\n{}\n"))
	f.Add([]byte("2\n{}"))        // missing trailing newline
	f.Add([]byte("67108864\nx"))  // announces MaxFrame, delivers one byte
	f.Add([]byte("banana\n{}\n")) // non-numeric length
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for frames := 0; frames < 64; frames++ {
			var v json.RawMessage
			if err := ReadFrame(br, &v); err != nil {
				return // any error (including io.EOF) ends the stream
			}
			// Round-trip every accepted frame through the writer.
			var buf bytes.Buffer
			bw := bufio.NewWriter(&buf)
			if err := WriteFrame(bw, v); err != nil {
				t.Fatalf("re-encoding accepted frame %q: %v", v, err)
			}
			if err := bw.Flush(); err != nil {
				t.Fatal(err)
			}
			var back json.RawMessage
			if err := ReadFrame(bufio.NewReader(&buf), &back); err != nil {
				t.Fatalf("re-reading re-encoded frame %q: %v", v, err)
			}
			want, err1 := compact(v)
			got, err2 := compact(back)
			if err1 != nil || err2 != nil {
				t.Fatalf("compacting round-tripped JSON: %v / %v", err1, err2)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("round trip changed payload: %q -> %q", want, got)
			}
		}
		// Drain a little to make sure long streams of frames also terminate
		// cleanly rather than looping forever.
		io.CopyN(io.Discard, br, 1<<16)
	})
}

func compact(raw json.RawMessage) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
