package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
)

func encode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := WriteFrame(bw, v); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	type msg struct {
		ID   int       `json:"id"`
		Text string    `json:"text"`
		Vals []float64 `json:"vals,omitempty"`
	}
	cases := []msg{
		{},
		{ID: -1},
		{ID: 42, Text: "hello\nworld\x00é", Vals: []float64{0.1, -3, 1e300}},
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	for _, c := range cases {
		if err := WriteFrame(bw, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	for i, want := range cases {
		var got msg
		if err := ReadFrame(br, &got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.ID != want.ID || got.Text != want.Text || len(got.Vals) != len(want.Vals) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	var extra msg
	if err := ReadFrame(br, &extra); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean io.EOF after last frame, got %v", err)
	}
}

func TestBadLengths(t *testing.T) {
	for _, in := range []string{
		"-1\n{}\n",              // negative
		"99999999999\n{}\n",     // over MaxFrame
		"banana\n{}\n",          // not a number
		"2x\n{}\n",              // trailing junk
		strings.Repeat("9", 40), // length line way over cap
	} {
		var v json.RawMessage
		err := ReadFrame(bufio.NewReader(strings.NewReader(in)), &v)
		if err == nil || errors.Is(err, io.EOF) {
			t.Errorf("input %q: want a codec error, got %v", in, err)
		}
	}
}

func TestTruncation(t *testing.T) {
	full := encode(t, map[string]int{"a": 1})
	for cut := 1; cut < len(full); cut++ {
		var v json.RawMessage
		err := ReadFrame(bufio.NewReader(bytes.NewReader(full[:cut])), &v)
		if err == nil {
			t.Fatalf("truncated at %d bytes: want an error", cut)
		}
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncated at %d bytes: clean EOF mid-frame (%v)", cut, err)
		}
	}
}

func TestMissingTrailingNewline(t *testing.T) {
	var v json.RawMessage
	err := ReadFrame(bufio.NewReader(strings.NewReader("2\n{}X")), &v)
	if err == nil || !strings.Contains(err.Error(), "trailing newline") {
		t.Fatalf("want trailing-newline error, got %v", err)
	}
}

// TestNoOverAllocationOnShortStream: a frame header announcing MaxFrame
// followed by a tiny truncated payload must not allocate the announced
// size — the buffer grows only as data arrives.
func TestNoOverAllocationOnShortStream(t *testing.T) {
	in := []byte("67108864\ntiny")
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var v json.RawMessage
	err := ReadFrame(bufio.NewReader(bytes.NewReader(in)), &v)
	runtime.ReadMemStats(&after)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want io.ErrUnexpectedEOF, got %v", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("reading a 13-byte hostile stream allocated %d bytes (announced length trusted?)", grew)
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	var buf bytes.Buffer
	big := strings.Repeat("x", MaxFrame+1)
	err := WriteFrame(bufio.NewWriter(&buf), big)
	if err == nil || !strings.Contains(err.Error(), "MaxFrame") {
		t.Fatalf("want MaxFrame error, got %v", err)
	}
}
