// Package wire implements the length-delimited JSONL frame codec shared by
// every dispatch transport in this repository: exp.ProcBackend's
// stdin/stdout worker pipes and the internal/fabric TCP daemons. Each frame
// is an ASCII decimal payload length, a newline, the JSON payload, and a
// trailing newline — so a transcript is both unambiguous to parse (no
// scanner line limits, binary-safe) and readable line-by-line by a human:
//
//	42\n{"id":3,"task":{...}}\n
//
// The codec is deliberately defensive, because fabric peers are arbitrary
// TCP clients: payload lengths are bounded (MaxFrame), the length line
// itself is capped (a peer streaming non-protocol output fails fast instead
// of being buffered without limit), and a truncated, negative-length or
// otherwise hostile stream surfaces an error — never a panic, and never an
// allocation sized by an unread, attacker-chosen length (payload buffers
// grow only as bytes actually arrive).
package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxFrame bounds a frame payload (64 MiB, matching exp.FileCache's reader
// ceiling); a length beyond it means a corrupt or hostile stream.
const MaxFrame = 64 << 20

// maxLengthLine bounds the frame-length line: MaxFrame has 8 digits, so a
// longer line can only come from a peer that is not speaking the protocol
// (e.g. a misconfigured binary streaming arbitrary output) — fail fast
// instead of buffering its stream without limit.
const maxLengthLine = 16

// allocChunk caps the payload buffer's initial allocation: a frame header
// may lawfully announce up to MaxFrame bytes, but the buffer only grows as
// data actually arrives, so a truncated (or deliberately short) stream
// cannot make the reader allocate the announced size up front.
const allocChunk = 64 << 10

// WriteFrame marshals v and writes one frame. The caller flushes.
func WriteFrame(w *bufio.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: encoding frame: %w", err)
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d bytes exceeds MaxFrame %d", len(data), MaxFrame)
	}
	if _, err := fmt.Fprintf(w, "%d\n", len(data)); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// ReadFrame reads one frame into v. A clean EOF at a frame boundary returns
// io.EOF; EOF mid-frame returns io.ErrUnexpectedEOF.
func ReadFrame(r *bufio.Reader, v any) error {
	line, err := readLengthLine(r)
	if err != nil {
		return err
	}
	n, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil || n < 0 || n > MaxFrame {
		return fmt.Errorf("wire: bad frame length %q", strings.TrimSpace(line))
	}
	need := n + 1 // payload + trailing newline
	var bb bytes.Buffer
	bb.Grow(min(need, allocChunk))
	if _, err := io.CopyN(&bb, r, int64(need)); err != nil {
		if errors.Is(err, io.EOF) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	buf := bb.Bytes()
	if buf[n] != '\n' {
		return fmt.Errorf("wire: frame missing trailing newline")
	}
	if err := json.Unmarshal(buf[:n], v); err != nil {
		return fmt.Errorf("wire: decoding frame: %w", err)
	}
	return nil
}

// readLengthLine reads up to a newline with a hard size cap. A clean EOF
// before any byte returns io.EOF; EOF mid-line returns io.ErrUnexpectedEOF.
func readLengthLine(r *bufio.Reader) (string, error) {
	var line []byte
	for {
		b, err := r.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				if len(line) == 0 {
					return "", io.EOF
				}
				return "", io.ErrUnexpectedEOF
			}
			return "", err
		}
		if b == '\n' {
			return string(line), nil
		}
		line = append(line, b)
		if len(line) > maxLengthLine {
			return "", fmt.Errorf("wire: frame length line exceeds %d bytes; peer is not speaking the protocol", maxLengthLine)
		}
	}
}
