package main

import (
	"strings"
	"testing"
)

func f(v float64) *float64 { return &v }

func TestCheck(t *testing.T) {
	last := Run{Date: "2026-08-01", Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: f(100)},
		{Name: "BenchmarkB", NsPerOp: f(100)},
		{Name: "BenchmarkGone", NsPerOp: f(100)},
	}}
	cur := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: f(109)},  // +9%: inside threshold
		{Name: "BenchmarkB", NsPerOp: f(115)},  // +15%: regression
		{Name: "BenchmarkNew", NsPerOp: f(99)}, // no baseline: trivially passes
	}
	bad := check(last, cur, 0.10)
	if len(bad) != 1 {
		t.Fatalf("want exactly the BenchmarkB regression, got %v", bad)
	}
	if !strings.Contains(bad[0], "BenchmarkB") || !strings.Contains(bad[0], "2026-08-01") {
		t.Fatalf("regression line missing name or baseline date: %q", bad[0])
	}
	if bad := check(last, cur, 0.20); len(bad) != 0 {
		t.Fatalf("20%% threshold should pass, got %v", bad)
	}
}

func TestCheckSpeedupAndMissingNs(t *testing.T) {
	last := Run{Date: "d", Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: f(100)},
		{Name: "BenchmarkNoNs"},
	}}
	cur := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: f(50)}, // faster: never a regression
		{Name: "BenchmarkNoNs", NsPerOp: f(1e9)},
	}
	if bad := check(last, cur, 0.10); len(bad) != 0 {
		t.Fatalf("want no regressions, got %v", bad)
	}
}

func TestParseBenchKeepsFastestSample(t *testing.T) {
	in := strings.NewReader(`BenchmarkA-8   10   300.0 ns/op
BenchmarkA-8   10   200.0 ns/op
BenchmarkA-8   10   250.0 ns/op
`)
	benches, err := parseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 || *benches[0].NsPerOp != 200 {
		t.Fatalf("want one best-of-3 sample at 200 ns/op, got %+v", benches)
	}
}

func TestParseBenchDerivesEventsPerSec(t *testing.T) {
	in := strings.NewReader(`BenchmarkEngineEventN10k/incremental-8   1000000   400.0 ns/op
BenchmarkEngineEvent-8   1000000   400.0 ns/op
`)
	benches, err := parseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("got %d benchmarks", len(benches))
	}
	if benches[0].EventsPerSec == nil || *benches[0].EventsPerSec != 2.5e6 {
		t.Fatalf("N-family entry missing events_per_sec: %+v", benches[0])
	}
	if benches[1].EventsPerSec != nil {
		t.Fatalf("n=1 family must not carry events_per_sec: %+v", benches[1])
	}
}

func TestCheckGatesEventsPerSec(t *testing.T) {
	last := Run{Date: "d", Benchmarks: []Benchmark{
		{Name: "BenchmarkEngineEventN10k/incremental", EventsPerSec: f(2.5e6)},
	}}
	cur := []Benchmark{
		{Name: "BenchmarkEngineEventN10k/incremental", EventsPerSec: f(2.0e6)}, // -20%
	}
	bad := check(last, cur, 0.10)
	if len(bad) != 1 || !strings.Contains(bad[0], "events/sec") {
		t.Fatalf("want one events/sec regression, got %v", bad)
	}
	cur[0].EventsPerSec = f(2.4e6) // -4%: inside threshold
	if bad := check(last, cur, 0.10); len(bad) != 0 {
		t.Fatalf("want no regressions, got %v", bad)
	}
}

func TestParseBenchReadsRequestsPerSec(t *testing.T) {
	in := strings.NewReader(`BenchmarkServeCacheHit-1   500000   10000 ns/op   99500 requests/sec
`)
	benches, err := parseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 {
		t.Fatalf("got %d benchmarks", len(benches))
	}
	if benches[0].ReqPerSec == nil || *benches[0].ReqPerSec != 99500 {
		t.Fatalf("serving entry missing requests_per_sec: %+v", benches[0])
	}
}

func TestCheckGatesRequestsPerSec(t *testing.T) {
	last := Run{Date: "d", Benchmarks: []Benchmark{
		{Name: "BenchmarkServeCacheHit", ReqPerSec: f(100000)},
	}}
	cur := []Benchmark{
		{Name: "BenchmarkServeCacheHit", ReqPerSec: f(80000)}, // -20%
	}
	bad := check(last, cur, 0.10)
	if len(bad) != 1 || !strings.Contains(bad[0], "requests/sec") {
		t.Fatalf("want one requests/sec regression, got %v", bad)
	}
	cur[0].ReqPerSec = f(95000) // -5%: inside threshold
	if bad := check(last, cur, 0.10); len(bad) != 0 {
		t.Fatalf("want no regressions, got %v", bad)
	}
}

func TestCheckFailurePrintsSpread(t *testing.T) {
	in := strings.NewReader(`BenchmarkA-8   10   300.0 ns/op
BenchmarkA-8   10   200.0 ns/op
BenchmarkA-8   10   250.0 ns/op
`)
	benches, err := parseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	last := Run{Date: "d", Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: f(100)}}}
	bad := check(last, benches, 0.10)
	if len(bad) != 1 {
		t.Fatalf("want one regression, got %v", bad)
	}
	if !strings.Contains(bad[0], "200.0..300.0") || !strings.Contains(bad[0], "3 samples") {
		t.Fatalf("regression line missing observed spread: %q", bad[0])
	}
}

func TestParseBenchReadsMemStats(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkEngineEventN10/incremental-8   	 1000000	       500.0 ns/op	       4 B/op	       0 allocs/op
PASS
`)
	benches, err := parseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 {
		t.Fatalf("got %d benchmarks", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkEngineEventN10/incremental" {
		t.Fatalf("name %q", b.Name)
	}
	if b.NsPerOp == nil || *b.NsPerOp != 500 || b.BytesPerOp == nil || *b.BytesPerOp != 4 || b.AllocsOp == nil || *b.AllocsOp != 0 {
		t.Fatalf("parsed %+v", b)
	}
}
