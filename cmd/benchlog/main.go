// Command benchlog appends one dated entry to a benchmark history file
// (BENCH_engine.json) from `go test -bench` output on stdin, so the perf
// trajectory across PRs is preserved instead of overwritten.
//
// Usage:
//
//	go test ./internal/sim -bench EngineEvent -benchmem | go run ./cmd/benchlog -file BENCH_engine.json -date 2026-07-27 -note "PR 5"
//
// The file holds a JSON array of runs, newest last:
//
//	[{"date": "...", "note": "...", "benchmarks": [{"benchmark": ..., "ns_per_op": ...}, ...]}, ...]
//
// A pre-existing file in the legacy format (a bare array of benchmark
// objects, the single-snapshot layout written before this tool) is
// migrated in place: the old snapshot becomes the history's first entry.
// scripts/bench.sh is the intended caller.
//
// The BenchmarkEngineEventN* occupancy-scaling family additionally records
// a derived events_per_sec column (1e9 / ns_per_op; one op is one simulated
// event). The BenchmarkServe* serving family records the requests_per_sec
// metric emitted by the benchmarks themselves (b.ReportMetric with unit
// "requests/sec" — loopback HTTP requests served per second).
//
// With -check, nothing is appended: the run on stdin is compared against
// the newest entry already in the history, and the command fails when any
// benchmark present in both slowed down by more than -threshold (default
// 10%) in ns/op — or, for the BenchmarkEngineEventN* family, in
// events_per_sec, or, for BenchmarkServe*, in requests_per_sec. Failure
// lines include the observed spread across the
// best-of-N samples on stdin. Benchmarks new in this run pass trivially;
// benchmarks that disappeared are ignored. scripts/ci.sh runs this as the
// BENCH_GATE.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name       string   `json:"benchmark"`
	NsPerOp    *float64 `json:"ns_per_op"`
	BytesPerOp *float64 `json:"bytes_per_op"`
	AllocsOp   *float64 `json:"allocs_per_op"`
	CompPerSec *float64 `json:"completions_per_sec"`
	// EventsPerSec is derived (1e9 / ns_per_op) for the BenchmarkEngineEventN*
	// occupancy-scaling family, where one op is one simulated event — the
	// events/sec throughput the ROADMAP stretch goal is stated in.
	EventsPerSec *float64 `json:"events_per_sec,omitempty"`
	// ReqPerSec is the "requests/sec" metric the BenchmarkServe* loopback
	// serving benchmarks report via b.ReportMetric — the unit the ISSUE's
	// 100k-req/sec cache-hit serving target is stated in.
	ReqPerSec *float64 `json:"requests_per_sec,omitempty"`
	// samples holds every ns/op observation folded into this best-of-N
	// entry, for spread diagnostics on -check failures. Not recorded.
	samples []float64
}

// engineEventFamily marks the occupancy-scaling benchmarks that get the
// derived events_per_sec column and its -check gate.
func engineEventFamily(name string) bool {
	return strings.HasPrefix(name, "BenchmarkEngineEventN")
}

// Run is one dated benchmark batch.
type Run struct {
	Date       string      `json:"date"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   1234   56.7 ns/op   ..." including
// sub-benchmark names with slashes.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*?)(?:-\d+)?\s`)

func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		fields := strings.Fields(line)
		for i := 1; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			val := v
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = &val
			case "B/op":
				b.BytesPerOp = &val
			case "allocs/op":
				b.AllocsOp = &val
			case "completions/sec":
				b.CompPerSec = &val
			case "requests/sec":
				b.ReqPerSec = &val
			}
		}
		if engineEventFamily(b.Name) && b.NsPerOp != nil && *b.NsPerOp > 0 {
			eps := 1e9 / *b.NsPerOp
			b.EventsPerSec = &eps
		}
		out = append(out, b)
	}
	return dedupeFastest(out), sc.Err()
}

// dedupeFastest keeps the fastest (min ns/op) sample per benchmark name,
// preserving first-seen order, so `-count=N` runs record and compare
// best-of-N — the standard way to strip scheduler noise from a gate.
func dedupeFastest(in []Benchmark) []Benchmark {
	byName := make(map[string]int, len(in))
	var out []Benchmark
	for _, b := range in {
		if b.NsPerOp != nil {
			b.samples = []float64{*b.NsPerOp}
		}
		i, seen := byName[b.Name]
		if !seen {
			byName[b.Name] = len(out)
			out = append(out, b)
			continue
		}
		samples := append(out[i].samples, b.samples...)
		if b.NsPerOp != nil && (out[i].NsPerOp == nil || *b.NsPerOp < *out[i].NsPerOp) {
			out[i] = b
		}
		out[i].samples = samples
	}
	return out
}

// spread renders the observed ns/op samples behind a best-of-N entry, so a
// gate trip on a noisy shared box is diagnosable from the CI log alone.
func spread(samples []float64) string {
	if len(samples) < 2 {
		return ""
	}
	lo, hi := samples[0], samples[0]
	for _, v := range samples[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return fmt.Sprintf(" [observed %.1f..%.1f ns/op across %d samples]", lo, hi, len(samples))
}

// load reads the existing history, migrating the legacy single-snapshot
// layout (a bare array of benchmark objects) into the first history entry.
func load(path string) ([]Run, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var runs []Run
	if err := json.Unmarshal(data, &runs); err == nil && validRuns(runs) {
		return runs, nil
	}
	var legacy []Benchmark
	if err := json.Unmarshal(data, &legacy); err == nil && len(legacy) > 0 && legacy[0].Name != "" {
		return []Run{{Date: "pre-history", Note: "legacy single snapshot (migrated)", Benchmarks: legacy}}, nil
	}
	return nil, fmt.Errorf("%s: unrecognized layout (neither run history nor legacy snapshot)", path)
}

// validRuns guards the happy-path unmarshal: json.Unmarshal accepts the
// legacy layout into []Run with everything zero, which must fall through
// to the migration branch instead.
func validRuns(runs []Run) bool {
	for _, r := range runs {
		if r.Date == "" {
			return false
		}
	}
	return true
}

// check compares the current run against the newest recorded entry and
// returns one line per regression beyond threshold (e.g. 0.10 for 10%).
// ns/op is gated everywhere; events_per_sec is additionally gated for the
// BenchmarkEngineEventN* family so the N-scaling benchmarks participate in
// the regression gate in the unit the ROADMAP goal is stated in, and
// requests_per_sec is gated for the BenchmarkServe* serving family for the
// same reason (the ISSUE's serving target is stated in req/sec). B/op and
// allocs/op are pinned exactly by the test suite, and completions/sec is
// derived from ns/op. Benchmarks missing from either side are skipped —
// renames and additions must not brick CI. Failure lines carry the observed
// best-of-N spread so a noisy-box trip is diagnosable from the log.
func check(last Run, cur []Benchmark, threshold float64) []string {
	prev := make(map[string]Benchmark, len(last.Benchmarks))
	for _, b := range last.Benchmarks {
		prev[b.Name] = b
	}
	var bad []string
	for _, b := range cur {
		base, ok := prev[b.Name]
		if !ok {
			continue
		}
		if b.NsPerOp != nil && base.NsPerOp != nil && *base.NsPerOp > 0 {
			if ratio := *b.NsPerOp / *base.NsPerOp; ratio > 1+threshold {
				bad = append(bad, fmt.Sprintf("%s: %.1f ns/op vs %.1f recorded on %s (%+.1f%%, threshold %+.0f%%)%s",
					b.Name, *b.NsPerOp, *base.NsPerOp, last.Date, (ratio-1)*100, threshold*100, spread(b.samples)))
			}
		}
		if b.EventsPerSec != nil && base.EventsPerSec != nil && *b.EventsPerSec > 0 {
			if ratio := *base.EventsPerSec / *b.EventsPerSec; ratio > 1+threshold {
				bad = append(bad, fmt.Sprintf("%s: %.0f events/sec vs %.0f recorded on %s (-%.1f%%, threshold %.0f%%)%s",
					b.Name, *b.EventsPerSec, *base.EventsPerSec, last.Date, (1-1/ratio)*100, threshold*100, spread(b.samples)))
			}
		}
		if b.ReqPerSec != nil && base.ReqPerSec != nil && *b.ReqPerSec > 0 {
			if ratio := *base.ReqPerSec / *b.ReqPerSec; ratio > 1+threshold {
				bad = append(bad, fmt.Sprintf("%s: %.0f requests/sec vs %.0f recorded on %s (-%.1f%%, threshold %.0f%%)%s",
					b.Name, *b.ReqPerSec, *base.ReqPerSec, last.Date, (1-1/ratio)*100, threshold*100, spread(b.samples)))
			}
		}
	}
	return bad
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchlog: ")
	var (
		file      = flag.String("file", "BENCH_engine.json", "benchmark history file to append to")
		date      = flag.String("date", "", "date stamp for this run (required unless -check, e.g. 2026-07-27)")
		note      = flag.String("note", "", "free-form label for this run (e.g. git describe)")
		doCheck   = flag.Bool("check", false, "compare stdin against the newest recorded entry instead of appending")
		threshold = flag.Float64("threshold", 0.10, "with -check: maximum tolerated ns/op slowdown (0.10 = 10%)")
	)
	flag.Parse()
	if !*doCheck && *date == "" {
		log.Fatal("-date is required")
	}
	benches, err := parseBench(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(benches) == 0 {
		log.Fatal("no Benchmark lines on stdin")
	}
	runs, err := load(*file)
	if err != nil {
		log.Fatal(err)
	}
	if *doCheck {
		if len(runs) == 0 {
			fmt.Printf("%s has no recorded runs; nothing to compare against\n", *file)
			return
		}
		last := runs[len(runs)-1]
		if bad := check(last, benches, *threshold); len(bad) > 0 {
			for _, line := range bad {
				log.Print(line)
			}
			log.Fatalf("%d benchmark(s) regressed beyond %.0f%% vs the %s entry in %s", len(bad), *threshold*100, last.Date, *file)
		}
		fmt.Printf("%d benchmark(s) within %.0f%% of the %s entry in %s\n", len(benches), *threshold*100, last.Date, *file)
		return
	}
	runs = append(runs, Run{Date: *date, Note: *note, Benchmarks: benches})
	out, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*file, append(out, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended %d benchmark(s) to %s (%d run(s) total)\n", len(benches), *file, len(runs))
}
