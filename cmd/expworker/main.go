// Command expworker is the subprocess side of the experiment layer's
// sharded dispatch (exp.ProcBackend): it serves the length-delimited JSONL
// task protocol on stdin/stdout until stdin closes. It is not meant to be
// run by hand — exp.ProcBackend spawns one copy per worker slot and feeds
// it (cell, replication) simulation tasks, analysis points, validation
// rows and dominance traces:
//
//	simulate -backend proc -procs 4 ...   # workers re-exec the simulate binary
//	exp.ProcBackend{Command: []string{"/path/to/expworker"}}
//
// Pointing ProcBackend.Command at a built expworker keeps the worker image
// separate from the driver binary; by default ProcBackend re-executes the
// calling binary instead (cmd/simulate, cmd/figures and cmd/dominance all
// answer the protocol via exp.MaybeServeWorker).
package main

import (
	"log"
	"os"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("expworker: ")
	if len(os.Args) > 1 {
		log.Fatalf("expworker takes no arguments; it serves the exp.ProcBackend protocol on stdin/stdout (got %v)", os.Args[1:])
	}
	if err := exp.ServeWorker(os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
