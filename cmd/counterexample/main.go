// Command counterexample reproduces Theorem 6: with k = 2 servers,
// muE = 2 muI, two inelastic jobs and one elastic job at time 0 and no
// further arrivals, Elastic-First strictly beats Inelastic-First. The exact
// expected total response times are 35/12/muI (IF) and 33/12/muI (EF).
// The command computes both by first-step analysis of the absorbing chain
// and verifies them against Monte Carlo simulation.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("counterexample: ")
	var (
		muI    = flag.Float64("muI", 1, "inelastic service rate (muE = 2*muI)")
		trials = flag.Int("trials", 200_000, "Monte Carlo trials for the cross-check")
		seed   = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *muI <= 0 {
		log.Fatalf("-muI must be positive (got %g)", *muI)
	}
	if *trials < 1 {
		log.Fatalf("-trials must be >= 1 (got %d)", *trials)
	}

	res, err := core.Theorem6(*muI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 6 counterexample: k=2, muI=%g, muE=%g, start = 2 inelastic + 1 elastic\n\n", res.MuI, res.MuE)
	fmt.Printf("first-step analysis (exact):\n")
	fmt.Printf("  IF total E[sum T] = %.9f  (paper: 35/12/muI = %.9f)\n", res.IFTotal, res.IFExpect)
	fmt.Printf("  EF total E[sum T] = %.9f  (paper: 33/12/muI = %.9f)\n", res.EFTotal, res.EFExpect)
	fmt.Printf("  EF/IF = %.6f  => EF is strictly better when muI < muE\n\n", res.EFTotal/res.IFTotal)

	mc := func(p sim.Policy) float64 {
		r := xrand.New(*seed)
		total := 0.0
		for trial := 0; trial < *trials; trial++ {
			sys := sim.NewSystem(2, p)
			sys.Arrive(sim.Arrival{Time: 0, Class: sim.Inelastic, Size: r.Exp(*muI)})
			sys.Arrive(sim.Arrival{Time: 0, Class: sim.Inelastic, Size: r.Exp(*muI)})
			sys.Arrive(sim.Arrival{Time: 0, Class: sim.Elastic, Size: r.Exp(2 * *muI)})
			for _, c := range sys.Drain(1e12) {
				total += c.Response()
			}
		}
		return total / float64(*trials)
	}
	fmt.Printf("Monte Carlo cross-check (%d trials):\n", *trials)
	fmt.Printf("  IF total = %.6f\n", mc(policy.InelasticFirst{}))
	fmt.Printf("  EF total = %.6f\n", mc(policy.ElasticFirst{}))
}
