// Command resultd is the always-on results service: an HTTP daemon that
// answers sweep-spec POSTs from a memory-speed cache, coalesces concurrent
// identical requests into one computation, and streams partial aggregates
// for long sweeps over SSE (internal/serve).
//
//	resultd -listen 127.0.0.1:9080
//	resultd -listen :0 -addr-file resultd.addr -backend fabric -dispatcher 127.0.0.1:9071
//	resultd -backend proc -procs 4 -cache cells.jsonl
//
//	curl -s -X POST --data @spec.json http://127.0.0.1:9080/v1/sweep
//	curl -sN -X POST --data @spec.json http://127.0.0.1:9080/v1/sweep/stream
//	curl -s http://127.0.0.1:9080/v1/stats
//
// The spec body is the JSON serialization of an exp.Sweep — the same grid
// cmd/simulate builds from its flags — and the served bytes are identical,
// byte for byte, to `simulate -json` for that spec. A -cache file gives the
// in-memory layers a persistent cell-granularity floor: after a restart,
// previously computed cells are re-served from disk instead of recomputed.
//
// -listen accepts ":0" to pick a free port; -addr-file then publishes the
// actual address for scripts (the CI serving gate uses exactly this).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/serve"
)

func main() {
	exp.MaybeServeWorker() // answer the ProcBackend protocol when spawned as a worker
	log.SetFlags(0)
	log.SetPrefix("resultd: ")
	var (
		listen     = flag.String("listen", "127.0.0.1:9080", "address to listen on (\":0\" picks a free port)")
		addrFile   = flag.String("addr-file", "", "write the actual listen address to this file (for scripts with -listen :0)")
		backend    = flag.String("backend", "pool", "compute backend for cache misses: pool (goroutines), proc (worker subprocesses) or fabric (networked dispatcher)")
		procs      = flag.Int("procs", 0, "worker subprocess count for -backend proc (0 = GOMAXPROCS)")
		dispatch   = flag.String("dispatcher", "", "fabric dispatcher address (host:port) for -backend fabric")
		redial     = flag.Duration("backend-redial", 10*time.Second, "for -backend fabric: how long a computation redials an unreachable dispatcher before the server degrades (cache hits keep serving, misses get 503 + Retry-After)")
		workers    = flag.Int("workers", 0, "worker pool size for -backend pool (0 = GOMAXPROCS)")
		cachePath  = flag.String("cache", "", "JSONL cell cache shared with simulate -cache; persists computed cells across restarts")
		maxEntries = flag.Int("max-entries", 0, "response cache entry cap (0 = default 16Ki)")
		maxBytes   = flag.Int64("max-bytes", 0, "response cache byte cap (0 = default 256 MiB)")
		maxCells   = flag.Int("max-cells", 0, "largest admitted grid, in cells (0 = default 4096)")
		maxBody    = flag.Int64("max-body", 0, "largest admitted spec body, in bytes (0 = default 1 MiB)")
		inflight   = flag.Int("max-inflight", 0, "concurrent distinct computations before misses get 503 (0 = default 4)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}

	opts := serve.Options{
		Exp:          exp.Options{Workers: *workers},
		MaxEntries:   *maxEntries,
		MaxBytes:     *maxBytes,
		MaxCells:     *maxCells,
		MaxBodyBytes: *maxBody,
		MaxInflight:  *inflight,
		Logf:         log.Printf,
	}
	switch *backend {
	case "pool":
	case "proc":
		opts.Exp.Backend = &exp.ProcBackend{Procs: *procs}
	case "fabric":
		if *dispatch == "" {
			log.Fatal("-backend fabric requires -dispatcher host:port")
		}
		// A deliberately short redial budget: resultd degrades fast (serving
		// cache hits, 503ing misses with a Retry-After) instead of letting
		// every miss hang through a long dispatcher outage. The fabric
		// client re-attaches by job ref, so a dispatcher restart inside the
		// budget is a stall, not a failure.
		opts.Exp.Backend = &fabric.Backend{Addr: *dispatch, Name: "resultd", RedialBudget: *redial}
	default:
		log.Fatalf("unknown -backend %q (want pool, proc or fabric)", *backend)
	}
	if *cachePath != "" {
		fc, err := exp.OpenFileCache(*cachePath)
		if err != nil {
			log.Fatal(err)
		}
		if msg := exp.CorruptWarning(*cachePath, fc.Corrupt()); msg != "" {
			log.Print(msg)
		}
		defer fc.Close()
		log.Printf("cell cache %s: %d entries", *cachePath, fc.Len())
		opts.Exp.Cache = fc
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s (backend %s)", ln.Addr(), *backend)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	s := serve.New(opts)
	defer s.Close()
	srv := &http.Server{Handler: s}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
