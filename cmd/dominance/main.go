// Command dominance runs the Theorem 3 coupled sample-path experiment from
// the command line: two policies are driven in lockstep over identical
// arrival sequences and the total and inelastic work in system are compared
// at every event epoch. Independent traces run in parallel on an
// internal/exp dispatch backend — goroutines by default, worker
// subprocesses with -backend proc, or a networked fabric dispatcher with
// -backend fabric -dispatcher host:port.
//
// Usage:
//
//	dominance -k 4 -rho 0.8 -muI 1.5 -muE 1.0 -a IF -b EF -n 20000 -seeds 5
//	dominance -k 4 -rho 0.8 -a IF -b FCFS -seeds 8 -backend proc -procs 4
//	dominance -k 4 -rho 0.8 -seeds 32 -cache dominance.jsonl   # resumable
//
// -cache persists each finished trace as a JSONL task outcome (keyed by
// exp.TaskKey), so an interrupted many-seed run resumes where it stopped.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/exp"
	"repro/internal/fabric"
)

func main() {
	exp.MaybeServeWorker() // answer the ProcBackend protocol when spawned as a worker
	log.SetFlags(0)
	log.SetPrefix("dominance: ")
	var (
		k        = flag.Int("k", 4, "number of servers")
		rho      = flag.Float64("rho", 0.8, "system load in (0,1) (lambdaI=lambdaE)")
		muI      = flag.Float64("muI", 1.5, "inelastic service rate")
		muE      = flag.Float64("muE", 1.0, "elastic service rate")
		polA     = flag.String("a", "IF", "policy A (the claimed dominator)")
		polB     = flag.String("b", "EF", "policy B")
		n        = flag.Int("n", 20_000, "arrivals per trace")
		seeds    = flag.Int("seeds", 5, "number of independent traces")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		backend  = flag.String("backend", "pool", "dispatch backend: pool (goroutines), proc (worker subprocesses) or fabric (networked dispatcher)")
		procs    = flag.Int("procs", 0, "worker subprocess count for -backend proc (0 = GOMAXPROCS)")
		dispatch = flag.String("dispatcher", "", "fabric dispatcher address (host:port) for -backend fabric")
		cache    = flag.String("cache", "", "JSONL outcome cache; finished traces are reused across runs")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	var be exp.Backend
	switch *backend {
	case "pool":
	case "proc":
		be = &exp.ProcBackend{Procs: *procs}
	case "fabric":
		if *dispatch == "" {
			log.Fatal("-backend fabric requires -dispatcher host:port")
		}
		be = &fabric.Backend{Addr: *dispatch, Name: "dominance"}
	default:
		log.Fatalf("unknown -backend %q (want pool, proc or fabric)", *backend)
	}
	var oc exp.OutcomeCache
	if *cache != "" {
		fc, err := exp.OpenFileCache(*cache)
		if err != nil {
			log.Fatal(err)
		}
		if msg := exp.CorruptWarning(*cache, fc.Corrupt()); msg != "" {
			log.Print(msg)
		}
		defer fc.Close()
		oc = fc
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runs, err := exp.Dominance(ctx, exp.DominanceConfig{
		K: *k, Rho: *rho, MuI: *muI, MuE: *muE,
		PolicyA: *polA, PolicyB: *polB,
		Arrivals: *n, Seeds: *seeds, Workers: *workers, Backend: be,
		Cache: oc,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("coupled runs: k=%d rho=%.2f muI=%g muE=%g, %d arrivals x %d seeds\n",
		*k, *rho, *muI, *muE, *n, *seeds)
	fmt.Printf("claim: W_%s(t) <= W_%s(t) and W_I,%s(t) <= W_I,%s(t) for all t\n\n",
		*polA, *polB, *polA, *polB)

	totalChecks, totalViolations := 0, 0
	for _, run := range runs {
		totalChecks += run.Checked
		totalViolations += run.Violations
		status := "dominates"
		if run.Violations > 0 {
			status = fmt.Sprintf("VIOLATED (first: %s)", run.First)
		}
		fmt.Printf("seed %2d: %7d checks, mean-resp ratio %s/%s = %.4f, %s\n",
			run.Seed, run.Checked, *polA, *polB, run.RatioAB, status)
	}
	fmt.Printf("\ntotal: %d checks, %d violations\n", totalChecks, totalViolations)
	if totalViolations == 0 {
		fmt.Printf("%s work-dominates %s on every sampled path — consistent with Theorem 3\n", *polA, *polB)
	} else {
		fmt.Printf("dominance does NOT hold (expected when %s is not IF, or rival is outside class P)\n", *polA)
	}
}
