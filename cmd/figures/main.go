// Command figures regenerates every figure of the paper's evaluation
// section as CSV (and an ASCII rendering for the heat maps), dispatching
// each figure's parameter grid across an internal/exp backend — the
// in-process goroutine pool by default, sharded worker subprocesses with
// -backend proc, or a networked fabric dispatcher with -backend fabric
// -dispatcher host:port (bit-identical output any way):
//
//	figures -fig 4            # heat maps of Figure 4a/4b/4c
//	figures -fig 5            # curves of Figure 5a/5b/5c
//	figures -fig 6            # scaling curves of Figure 6a/6b
//	figures -fig validate     # analysis-vs-simulation agreement table
//	figures -fig ablation     # busy-period fit ablation
//	figures -fig mix          # Section 6 class-mix sweep (N-class engine)
//	figures -fig all          # everything, written to -outdir
//	figures -fig mix -backend proc -procs 4
//	figures -fig all -cache figures.jsonl    # resume an interrupted run
//
// -cache persists finished work as JSONL: the mix sweep at cell
// granularity and every grid point of the other figures as task outcomes
// (exp.TaskKey), so re-running after an interruption recomputes only what
// is missing.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/plot"
)

// xsOf and ysOf unpack curve points into plot series.
func xsOf(points []exp.CurvePoint) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.MuI
	}
	return out
}

func ysOf(points []exp.CurvePoint, ifPolicy bool) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		if ifPolicy {
			out[i] = p.TIF
		} else {
			out[i] = p.TEF
		}
	}
	return out
}

func main() {
	exp.MaybeServeWorker() // answer the ProcBackend protocol when spawned as a worker
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig      = flag.String("fig", "all", "which artifact: 4, 5, 6, validate, ablation, mix, all")
		outdir   = flag.String("outdir", "", "write CSVs here instead of stdout")
		quick    = flag.Bool("quick", false, "smaller grids / shorter simulations")
		svg      = flag.Bool("svg", false, "also render SVG figures into -outdir")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		backend  = flag.String("backend", "pool", "dispatch backend: pool (goroutines), proc (worker subprocesses) or fabric (networked dispatcher)")
		procs    = flag.Int("procs", 0, "worker subprocess count for -backend proc (0 = GOMAXPROCS)")
		dispatch = flag.String("dispatcher", "", "fabric dispatcher address (host:port) for -backend fabric")
		cache    = flag.String("cache", "", "JSONL cache; finished cells and grid points are reused across runs")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *svg && *outdir == "" {
		log.Fatal("-svg requires -outdir")
	}
	opt := exp.Options{Workers: *workers}
	switch *backend {
	case "pool":
	case "proc":
		opt.Backend = &exp.ProcBackend{Procs: *procs}
	case "fabric":
		if *dispatch == "" {
			log.Fatal("-backend fabric requires -dispatcher host:port")
		}
		opt.Backend = &fabric.Backend{Addr: *dispatch, Name: "figures"}
	default:
		log.Fatalf("unknown -backend %q (want pool, proc or fabric)", *backend)
	}
	if *cache != "" {
		fc, err := exp.OpenFileCache(*cache)
		if err != nil {
			log.Fatal(err)
		}
		if msg := exp.CorruptWarning(*cache, fc.Corrupt()); msg != "" {
			log.Print(msg)
		}
		defer fc.Close()
		// One file serves both granularities: the mix sweep caches whole
		// cells, the point drivers (Figures 4-6, validation, ablation)
		// cache task outcomes keyed by exp.TaskKey.
		opt.Cache = fc
		opt.TaskCache = fc
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	writeSVG := func(name string, render func(io.Writer) error) {
		if !*svg {
			return
		}
		f, err := os.Create(filepath.Join(*outdir, name))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := render(f); err != nil {
			log.Fatal(err)
		}
	}

	out := func(name string) (io.Writer, func()) {
		if *outdir == "" {
			fmt.Printf("==== %s ====\n", name)
			return os.Stdout, func() {}
		}
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(filepath.Join(*outdir, name))
		if err != nil {
			log.Fatal(err)
		}
		return f, func() { f.Close() }
	}

	grid := exp.DefaultMuGrid()
	if *quick {
		grid = []float64{0.25, 0.75, 1.5, 2.5, 3.5}
	}

	runFig4 := func() {
		for _, cfg := range []struct {
			rho  float64
			name string
		}{{0.5, "fig4a_low_load.csv"}, {0.7, "fig4b_med_load.csv"}, {0.9, "fig4c_high_load.csv"}} {
			points, err := exp.Figure4(ctx, 4, cfg.rho, grid, opt)
			if err != nil {
				log.Fatal(err)
			}
			w, closeFn := out(cfg.name)
			if err := exp.WriteHeatmapCSV(w, points); err != nil {
				log.Fatal(err)
			}
			closeFn()
			fmt.Printf("\nFigure 4 heat map, rho=%.1f (k=4, lambdaI=lambdaE):\n%s\n",
				cfg.rho, exp.RenderHeatmapASCII(points))
			sc := plot.Scatter{
				Title:  fmt.Sprintf("Figure 4: IF vs EF, rho=%.1f, k=4", cfg.rho),
				XLabel: "muI", YLabel: "muE",
				TrueName: "IF superior", FalseName: "EF superior",
			}
			for _, p := range points {
				sc.X = append(sc.X, p.MuI)
				sc.Y = append(sc.Y, p.MuE)
				sc.Class = append(sc.Class, p.IFWins)
			}
			writeSVG(strings.TrimSuffix(cfg.name, ".csv")+".svg", sc.Render)
		}
	}

	runFig5 := func() {
		for _, cfg := range []struct {
			rho  float64
			name string
		}{{0.5, "fig5a_low_load.csv"}, {0.7, "fig5b_med_load.csv"}, {0.9, "fig5c_high_load.csv"}} {
			points, err := exp.Figure5(ctx, 4, cfg.rho, grid, opt)
			if err != nil {
				log.Fatal(err)
			}
			w, closeFn := out(cfg.name)
			if err := exp.WriteCurveCSV(w, points); err != nil {
				log.Fatal(err)
			}
			closeFn()
			ch := plot.LineChart{
				Title:  fmt.Sprintf("Figure 5: E[T] vs muI, rho=%.1f (muE=1, k=4)", cfg.rho),
				XLabel: "muI", YLabel: "E[T]",
				Series: []plot.Series{
					{Name: "IF", X: xsOf(points), Y: ysOf(points, true)},
					{Name: "EF", X: xsOf(points), Y: ysOf(points, false)},
				},
			}
			writeSVG(strings.TrimSuffix(cfg.name, ".csv")+".svg", ch.Render)
		}
		fmt.Println("Figure 5 curves written (E[T] vs muI; muE=1, k=4).")
	}

	runFig6 := func() {
		ks := []int{2, 3, 4, 5, 6, 8, 10, 12, 14, 16}
		if *quick {
			ks = []int{2, 4, 8, 16}
		}
		for _, cfg := range []struct {
			muI  float64
			name string
		}{{0.25, "fig6a_muI_0.25.csv"}, {3.25, "fig6b_muI_3.25.csv"}} {
			points, err := exp.Figure6(ctx, 0.9, cfg.muI, 1.0, ks, opt)
			if err != nil {
				log.Fatal(err)
			}
			w, closeFn := out(cfg.name)
			if err := exp.WriteKCurveCSV(w, points); err != nil {
				log.Fatal(err)
			}
			closeFn()
			var ks, ifY, efY []float64
			for _, p := range points {
				ks = append(ks, float64(p.K))
				ifY = append(ifY, p.TIF)
				efY = append(efY, p.TEF)
			}
			ch := plot.LineChart{
				Title:  fmt.Sprintf("Figure 6: E[T] vs k, rho=0.9 (muI=%.2f, muE=1)", cfg.muI),
				XLabel: "k", YLabel: "E[T]",
				Series: []plot.Series{
					{Name: "IF", X: ks, Y: ifY},
					{Name: "EF", X: ks, Y: efY},
				},
			}
			writeSVG(strings.TrimSuffix(cfg.name, ".csv")+".svg", ch.Render)
		}
		fmt.Println("Figure 6 curves written (E[T] vs k; rho=0.9).")
	}

	runValidate := func() {
		simOpt := core.SimOptions{Seed: 7, WarmupJobs: 50_000, MaxJobs: 1_000_000}
		muIs := []float64{0.5, 1.0, 2.0, 3.0}
		if *quick {
			simOpt.MaxJobs = 200_000
			muIs = []float64{0.5, 2.0}
		}
		rows, err := exp.ValidateAnalysis(ctx, 4, 0.7, muIs, simOpt, opt)
		if err != nil {
			log.Fatal(err)
		}
		w, closeFn := out("validation.csv")
		if err := exp.WriteValidationTable(w, rows); err != nil {
			log.Fatal(err)
		}
		closeFn()
	}

	// runMix sweeps the Section 6 class-mix presets end to end on the
	// unified N-class engine: every mix × policy cell is one simulation
	// replication set on the configured backend. Tail mode reports
	// per-class p99 response times alongside the means (ROADMAP "tail
	// metrics on mixes").
	runMix := func() {
		sweep := exp.Sweep{
			Name: "figures-mix",
			Grid: exp.Grid{
				K:        []int{8},
				Rho:      []float64{0.5, 0.7},
				Mixes:    []string{"threeclass", "partialelastic", "cappedladder"},
				Policies: []string{"LFF", "SMF", "EF", "EQUI", "FCFS"},
			},
			Reps: 3, Warmup: 20_000, Jobs: 200_000,
			Tail: true,
		}
		if *quick {
			sweep.Grid.Rho = []float64{0.7}
			sweep.Reps = 1
			sweep.Warmup, sweep.Jobs = 5_000, 50_000
		}
		rs, err := exp.Run(ctx, sweep, opt)
		if err != nil {
			log.Fatal(err)
		}
		w, closeFn := out("mix_classes.csv")
		if err := rs.WriteCSV(w); err != nil {
			log.Fatal(err)
		}
		closeFn()
		fmt.Println("class-mix sweep written (Section 6 scenarios, overall and per-class E[T]).")
		for _, mixName := range sweep.Grid.Mixes {
			ch := plot.LineChart{
				Title:  fmt.Sprintf("Class mix %s: E[T] vs rho (k=8)", mixName),
				XLabel: "rho", YLabel: "E[T]",
			}
			for _, pol := range sweep.Grid.Policies {
				var xs, ys []float64
				for _, cr := range rs.Cells {
					if cr.Cell.Mix == mixName && cr.Cell.Policy == pol {
						xs = append(xs, cr.Cell.Rho)
						ys = append(ys, cr.ET)
					}
				}
				ch.Series = append(ch.Series, plot.Series{Name: pol, X: xs, Y: ys})
			}
			writeSVG("mix_"+mixName+".svg", ch.Render)
		}
	}

	runAblation := func() {
		muIs := []float64{0.5, 1.0, 2.0}
		if *quick {
			muIs = []float64{1.0}
		}
		rows, err := exp.BusyPeriodAblation(ctx, 4, 0.8, muIs, opt)
		if err != nil {
			log.Fatal(err)
		}
		w, closeFn := out("ablation_busyperiod.csv")
		fmt.Fprintln(w, "rho,muI,policy,ET_exact,ET_coxian3,ET_exp1,err_coxian3,err_exp1")
		for _, r := range rows {
			fmt.Fprintf(w, "%g,%g,%s,%.6f,%.6f,%.6f,%+.4f%%,%+.4f%%\n",
				r.Rho, r.MuI, r.Policy, r.Exact, r.Coxian3, r.Exp1, 100*r.ErrCox, 100*r.ErrExp)
		}
		closeFn()
	}

	switch *fig {
	case "4":
		runFig4()
	case "5":
		runFig5()
	case "6":
		runFig6()
	case "validate":
		runValidate()
	case "ablation":
		runAblation()
	case "mix":
		runMix()
	case "all":
		runFig4()
		runFig5()
		runFig6()
		runValidate()
		runAblation()
		runMix()
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
}
