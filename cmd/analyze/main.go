// Command analyze computes mean response times under Inelastic-First and
// Elastic-First with the paper's matrix-analytic pipeline (Section 5 and
// Appendix D), and optionally cross-checks against the exact truncated 2D
// chain.
//
// Usage:
//
//	analyze -k 4 -rho 0.9 -muI 0.5 -muE 1.0 [-exact]
//	analyze -k 4 -lambdaI 1.2 -lambdaE 1.2 -muI 0.5 -muE 1.0
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ctmc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	var (
		k       = flag.Int("k", 4, "number of servers")
		rho     = flag.Float64("rho", 0, "system load (sets lambdaI=lambdaE); overrides -lambdaI/-lambdaE")
		lambdaI = flag.Float64("lambdaI", 0, "inelastic arrival rate")
		lambdaE = flag.Float64("lambdaE", 0, "elastic arrival rate")
		muI     = flag.Float64("muI", 1, "inelastic service rate")
		muE     = flag.Float64("muE", 1, "elastic service rate")
		exact   = flag.Bool("exact", false, "also solve the exact truncated 2D chain")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *k < 1 {
		log.Fatalf("-k must be >= 1 (got %d)", *k)
	}
	if *muI <= 0 || *muE <= 0 {
		log.Fatalf("service rates must be positive (got muI=%g, muE=%g)", *muI, *muE)
	}

	var s core.System
	switch {
	case *rho != 0:
		if !(*rho > 0 && *rho < 1) {
			log.Fatalf("-rho must be in (0, 1) (got %g)", *rho)
		}
		s = core.ForLoad(*k, *rho, *muI, *muE)
	case *lambdaI > 0 && *lambdaE > 0:
		s = core.NewSystem(*k, *lambdaI, *muI, *lambdaE, *muE)
	default:
		log.Fatal("specify either -rho in (0, 1) or both -lambdaI > 0 and -lambdaE > 0")
	}
	if s.Rho() >= 1 {
		log.Fatalf("system is unstable: rho = %.4f >= 1", s.Rho())
	}

	fmt.Printf("system: k=%d lambdaI=%.4f lambdaE=%.4f muI=%g muE=%g rho=%.4f\n",
		s.K, s.LambdaI, s.LambdaE, s.MuI, s.MuE, s.Rho())

	ifRes, efRes, err := s.Analyze()
	if err != nil {
		log.Fatalf("analysis failed: %v", err)
	}
	fmt.Printf("\nmatrix-analytic results (3-moment busy-period fit):\n")
	fmt.Printf("  IF: E[T]=%.6f  E[T_I]=%.6f  E[T_E]=%.6f\n", ifRes.T, ifRes.TI, ifRes.TE)
	fmt.Printf("  EF: E[T]=%.6f  E[T_I]=%.6f  E[T_E]=%.6f\n", efRes.T, efRes.TI, efRes.TE)
	better := "IF"
	if efRes.T < ifRes.T {
		better = "EF"
	}
	fmt.Printf("  better policy: %s\n", better)

	if *exact {
		fmt.Printf("\nexact truncated-chain cross-check:\n")
		for _, pc := range []struct {
			name  string
			alloc ctmc.Alloc
			got   float64
		}{{"IF", ctmc.IFAlloc, ifRes.T}, {"EF", ctmc.EFAlloc, efRes.T}} {
			perf, err := s.SolveExact(pc.alloc, 1e-10)
			if err != nil {
				log.Fatalf("exact solve (%s): %v", pc.name, err)
			}
			fmt.Printf("  %s: exact E[T]=%.6f (analysis error %+.3f%%, truncation %dx%d)\n",
				pc.name, perf.MeanT, 100*(pc.got-perf.MeanT)/perf.MeanT, perf.CapI, perf.CapE)
		}
	}
}
