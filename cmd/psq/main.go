// Command psq is the submission CLI of the networked sweep fabric: it
// talks to a running fabricd dispatcher to submit, list and cancel sweep
// jobs.
//
//	psq -dispatcher 127.0.0.1:9071 submit -k 4 -rho 0.7,0.9 -policy IF,EF -reps 3
//	psq -dispatcher 127.0.0.1:9071 submit -detach -k 8 -rho 0.9 -policy IF -reps 5
//	psq -dispatcher 127.0.0.1:9071 list
//	psq -dispatcher 127.0.0.1:9071 stats
//	psq -dispatcher 127.0.0.1:9071 cancel j3
//
// An attached submit (the default) streams results back and prints the
// result table, exactly bit-identical to `simulate` run locally with the
// same flags; Ctrl-C cancels the job on the dispatcher. A -detach submit
// returns the job id immediately and leaves the sweep running on the
// fabric, warming the dispatcher's outcome cache — a later submission of
// the same cells (from psq or any driver with -backend fabric) is answered
// from the cache without recomputation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/fabric"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: psq -dispatcher host:port <command> [flags]

commands:
  submit   submit a sweep (attached by default; -detach to fire and forget)
  list     list jobs on the dispatcher
  stats    show dispatcher counters: workers, queue depth, cache hits
  cancel   cancel a running job by id: psq ... cancel <id>

`)
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("psq: ")
	dispatcher := flag.String("dispatcher", "127.0.0.1:9071", "fabricd dispatcher address (host:port)")
	redial := flag.Duration("redial", 30*time.Second, "submit: how long to redial an unreachable or restarting dispatcher before giving up (re-attaches idempotently by job ref)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "submit":
		runSubmit(ctx, *dispatcher, *redial, args)
	case "list":
		runList(ctx, *dispatcher)
	case "stats":
		runStats(ctx, *dispatcher)
	case "cancel":
		runCancel(ctx, *dispatcher, args)
	default:
		log.Printf("unknown command %q", cmd)
		usage()
	}
}

func parseInts(flagName, s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("-%s: %q is not an integer", flagName, part)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(flagName, s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			log.Fatalf("-%s: %q is not a number", flagName, part)
		}
		out = append(out, v)
	}
	return out
}

func parseList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runSubmit(ctx context.Context, dispatcher string, redial time.Duration, args []string) {
	fs := flag.NewFlagSet("psq submit", flag.ExitOnError)
	var (
		name     = fs.String("name", "psq", "job name shown by psq list")
		detach   = fs.Bool("detach", false, "return the job id immediately; the sweep runs on the fabric unattended")
		k        = fs.String("k", "4", "server counts (comma-separated)")
		rho      = fs.String("rho", "0.7", "system loads in (0,1) (comma-separated)")
		muI      = fs.String("muI", "1", "inelastic service rates (comma-separated)")
		muE      = fs.String("muE", "1", "elastic service rates (comma-separated)")
		pol      = fs.String("policy", "IF", "policies (comma-separated)")
		scenario = fs.String("scenario", "", "two-class workload presets instead of -muI/-muE (comma-separated)")
		mix      = fs.String("mix", "", "N-class workload presets instead of -muI/-muE (comma-separated)")
		jobs     = fs.Int64("jobs", 500_000, "measured completions per replication")
		warmup   = fs.Int64("warmup", 50_000, "completions discarded as warmup")
		seed     = fs.Uint64("seed", 1, "base RNG seed")
		reps     = fs.Int("reps", 1, "independent replications per cell")
		tail     = fs.Bool("tail", false, "also report p99 response times")
		jsonPath = fs.String("json", "", "attached: also write the full result set as JSON to this file")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", fs.Args())
	}

	sweep := exp.Sweep{
		Name: *name,
		Grid: exp.Grid{
			K:         parseInts("k", *k),
			Rho:       parseFloats("rho", *rho),
			Policies:  parseList(*pol),
			Scenarios: parseList(*scenario),
			Mixes:     parseList(*mix),
		},
		Reps:     *reps,
		BaseSeed: *seed,
		Warmup:   *warmup,
		Jobs:     *jobs,
		Tail:     *tail,
	}
	if len(sweep.Grid.Scenarios) == 0 && len(sweep.Grid.Mixes) == 0 {
		sweep.Grid.MuI = parseFloats("muI", *muI)
		sweep.Grid.MuE = parseFloats("muE", *muE)
	}

	if *detach {
		tasks, err := sweep.Tasks()
		if err != nil {
			log.Fatal(err)
		}
		cl := &fabric.Client{Addr: dispatcher, RedialBudget: redial}
		id, err := cl.SubmitDetached(ctx, *name, exp.Env{Sweep: &sweep}, tasks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted %s (%d tasks); watch it with: psq -dispatcher %s list\n", id, len(tasks), dispatcher)
		return
	}

	rs, err := exp.Run(ctx, sweep, exp.Options{
		Backend: &fabric.Backend{Addr: dispatcher, Name: *name, RedialBudget: redial},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-3s %-5s %-5s %-5s %-14s %-10s %10s %10s %10s %8s\n",
		"k", "rho", "muI", "muE", "preset", "policy", "E[T]", "E[T_I]", "E[T_E]", "util")
	for _, cr := range rs.Cells {
		c := cr.Cell
		preset := c.Scenario
		if c.Mix != "" {
			preset = c.Mix
		}
		fmt.Printf("%-3d %-5g %-5g %-5g %-14s %-10s %10.6f %10.6f %10.6f %8.4f\n",
			c.K, c.Rho, c.MuI, c.MuE, preset, c.Policy, cr.ET, cr.ETI, cr.ETE, cr.Util)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := rs.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

func runList(ctx context.Context, dispatcher string) {
	cl := &fabric.Client{Addr: dispatcher}
	jobs, err := cl.List(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return
	}
	fmt.Printf("%-6s %-16s %-9s %9s  %s\n", "id", "name", "state", "progress", "error")
	for _, j := range jobs {
		fmt.Printf("%-6s %-16s %-9s %4d/%-4d  %s\n", j.ID, j.Name, j.State, j.Done, j.Total, j.Err)
	}
}

func runStats(ctx context.Context, dispatcher string) {
	cl := &fabric.Client{Addr: dispatcher}
	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workers     %d\n", st.Workers)
	fmt.Printf("queue depth %d\n", st.QueueDepth)
	fmt.Printf("jobs        %d\n", st.Jobs)
	fmt.Printf("cache hits  %d\n", st.CacheHits)
	fmt.Printf("requeues    %d\n", st.Requeues)
	fmt.Printf("handshakes  %d\n", st.Handshakes)
	fmt.Printf("refusals    %d\n", st.Refusals)
	if st.DeadlineExpiries > 0 {
		fmt.Printf("deadline expiries %d\n", st.DeadlineExpiries)
	}
	if st.CacheLen > 0 || st.CacheStats != nil {
		fmt.Printf("cache len   %d\n", st.CacheLen)
	}
	if cs := st.CacheStats; cs != nil {
		fmt.Printf("cache lru   hits=%d misses=%d evictions=%d rejected=%d bytes=%d\n",
			cs.Hits, cs.Misses, cs.Evictions, cs.Rejected, cs.Bytes)
	}
}

func runCancel(ctx context.Context, dispatcher string, args []string) {
	if len(args) != 1 {
		log.Fatal("usage: psq -dispatcher host:port cancel <job-id>")
	}
	cl := &fabric.Client{Addr: dispatcher}
	if err := cl.Cancel(ctx, args[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canceled %s\n", args[0])
}
