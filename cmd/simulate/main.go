// Command simulate runs the event-driven simulator for the paper's model
// under any built-in policy and reports mean response times, queue lengths
// and utilization, optionally with batch-means confidence intervals from
// independent replications.
//
// Usage:
//
//	simulate -k 4 -rho 0.9 -muI 0.5 -muE 1.0 -policy IF -jobs 1000000
//	simulate -k 4 -rho 0.7 -muI 2 -muE 1 -policy THRESH:2 -reps 5
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	var (
		k      = flag.Int("k", 4, "number of servers")
		rho    = flag.Float64("rho", 0.7, "system load (lambdaI=lambdaE)")
		muI    = flag.Float64("muI", 1, "inelastic service rate")
		muE    = flag.Float64("muE", 1, "elastic service rate")
		pol    = flag.String("policy", "IF", "policy: IF, EF, FCFS, EQUI, GREEDY, DEFER, SRPT, THRESH:<cap>")
		jobs   = flag.Int64("jobs", 500_000, "measured completions per replication")
		warmup = flag.Int64("warmup", 50_000, "completions discarded as warmup")
		seed   = flag.Uint64("seed", 1, "base RNG seed")
		reps   = flag.Int("reps", 1, "independent replications (for confidence intervals)")
	)
	flag.Parse()

	s := core.ForLoad(*k, *rho, *muI, *muE)
	p, err := s.PolicyByName(*pol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: k=%d rho=%.3f muI=%g muE=%g lambda=%.4f/class policy=%s\n",
		s.K, s.Rho(), s.MuI, s.MuE, s.LambdaI, p.Name())

	var meanT, meanTI, meanTE, util stats.Summary
	var last sim.Result
	for rep := 0; rep < *reps; rep++ {
		res := s.Simulate(p, core.SimOptions{
			Seed:       *seed + uint64(rep),
			WarmupJobs: *warmup,
			MaxJobs:    *jobs,
		})
		meanT.Add(res.MeanT)
		meanTI.Add(res.MeanTI)
		meanTE.Add(res.MeanTE)
		util.Add(res.Metrics.Utilization(s.K))
		last = res
	}
	if *reps == 1 {
		fmt.Printf("E[T]   = %.6f\n", last.MeanT)
		fmt.Printf("E[T_I] = %.6f   E[T_E] = %.6f\n", last.MeanTI, last.MeanTE)
		fmt.Printf("E[N]   = %.6f   utilization = %.4f\n",
			last.MeanN, last.Metrics.Utilization(s.K))
		fmt.Printf("completions = %d\n", last.Completions)
		return
	}
	fmt.Printf("E[T]   = %.6f ± %.6f (95%%, %d reps)\n", meanT.Mean(), meanT.CI95(), *reps)
	fmt.Printf("E[T_I] = %.6f ± %.6f\n", meanTI.Mean(), meanTI.CI95())
	fmt.Printf("E[T_E] = %.6f ± %.6f\n", meanTE.Mean(), meanTE.CI95())
	fmt.Printf("util   = %.4f ± %.4f\n", util.Mean(), util.CI95())
}
