// Command simulate runs the event-driven simulator for the paper's model
// through the internal/exp worker pool. Every grid flag accepts a
// comma-separated list, so a single invocation can sweep load, service
// rates and policies in parallel; a one-point grid reproduces the classic
// single-run behavior. Results are deterministic for any -workers value.
//
// Usage:
//
//	simulate -k 4 -rho 0.9 -muI 0.5 -muE 1.0 -policy IF -jobs 1000000
//	simulate -k 4 -rho 0.7 -muI 2 -muE 1 -policy THRESH:2 -reps 5
//	simulate -k 4,8 -rho 0.5,0.7,0.9 -muI 2 -muE 1 -policy IF,EF -reps 3 -workers 8
//	simulate -k 8 -rho 0.7 -scenario mapreduce,mlplatform -policy IF,EF
//	simulate -k 8 -rho 0.5,0.7 -mix threeclass,partialelastic -policy LFF,EQUI,EF
//	simulate -k 4 -rho 0.9 -muI 1 -muE 1 -policy IF -cache sweep.jsonl -csv out.csv
//	simulate -k 4 -rho 0.7,0.9 -mix threeclass -policy LFF,EQUI -tail -backend proc -procs 4
//	simulate -k 16 -rho 0.98 -muI 1 -muE 1 -policy IF -engine incremental -jobs 2000000
//	simulate -k 4 -rho 0.9 -mix threeclass -policy LFF -quantiles 0.5,0.95,0.99,0.999
//
// -backend proc shards the (cell, replication) tasks across worker
// subprocesses (exp.ProcBackend); -backend fabric -dispatcher host:port
// submits them to a networked fabric dispatcher (cmd/fabricd) instead.
// Results are bit-identical to the default goroutine pool either way.
// -tail adds reservoir-sampled p99 response times, overall
// and per class; -quantiles widens that to any quantile set. -engine
// incremental opts into O(changed·log n) stepping for near-saturation
// sweeps with many resident jobs (deterministic, own golden set; the
// default rebuild engine stays bit-frozen). -cpuprofile/-memprofile/
// -mutexprofile write go-tool-pprof-loadable profiles of the sweep
// (profile.go), the same wiring `scripts/bench.sh profile` uses for the
// benchmark hot path.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/fabric"
)

func parseInts(flagName, s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("-%s: %q is not an integer", flagName, part)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(flagName, s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			log.Fatalf("-%s: %q is not a number", flagName, part)
		}
		out = append(out, v)
	}
	return out
}

func parseList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	exp.MaybeServeWorker() // answer the ProcBackend protocol when spawned as a worker
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	var (
		k        = flag.String("k", "4", "server counts (comma-separated)")
		rho      = flag.String("rho", "0.7", "system loads in (0,1), lambdaI=lambdaE (comma-separated)")
		muI      = flag.String("muI", "1", "inelastic service rates (comma-separated)")
		muE      = flag.String("muE", "1", "elastic service rates (comma-separated)")
		pol      = flag.String("policy", "IF", "policies: IF, EF, FCFS, EQUI, GREEDY, DEFER, SRPT, LFF, SMF, THRESH:<cap>, PRIO:<c0>><c1>>... (comma-separated; use '>' inside PRIO orders)")
		scenario = flag.String("scenario", "", "sweep two-class workload presets instead of -muI/-muE: mapreduce, mlplatform, hpcmalleable (comma-separated)")
		mix      = flag.String("mix", "", "sweep N-class workload presets instead of -muI/-muE: threeclass, partialelastic, cappedladder (comma-separated)")
		jobs     = flag.Int64("jobs", 500_000, "measured completions per replication")
		warmup   = flag.Int64("warmup", 50_000, "completions discarded as warmup")
		autoWarm = flag.Bool("auto-warmup", false, "MSER-5 warmup trimming instead of a fixed -warmup budget")
		batches  = flag.Int("batches", 0, "per-replication batch-means CI with this many batches (0 = off, else >= 2)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		reps     = flag.Int("reps", 1, "independent replications per cell")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		backend  = flag.String("backend", "pool", "dispatch backend: pool (goroutines), proc (worker subprocesses) or fabric (networked dispatcher)")
		procs    = flag.Int("procs", 0, "worker subprocess count for -backend proc (0 = GOMAXPROCS)")
		dispatch = flag.String("dispatcher", "", "fabric dispatcher address (host:port) for -backend fabric")
		tail     = flag.Bool("tail", false, "also report p99 response times, overall and per class")
		quants   = flag.String("quantiles", "", "tail quantiles in (0,1), e.g. 0.5,0.95,0.99,0.999 (implies -tail)")
		engine   = flag.String("engine", "rebuild", "stepping engine: rebuild (default, bit-frozen goldens) or incremental (O(changed·log n) per event for high-occupancy sweeps)")
		cache    = flag.String("cache", "", "JSONL result cache; completed cells are reused across runs")
		csvPath  = flag.String("csv", "", "also write the result table as CSV to this file")
		jsonPath = flag.String("json", "", "also write the full result set (per-replication detail) as JSON to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write an allocation profile of the sweep to this file")
		mtxProf  = flag.String("mutexprofile", "", "write a mutex-contention profile of the sweep to this file")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	defer startProfiling(*cpuProf, *memProf, *mtxProf)()
	if *reps < 1 {
		log.Fatalf("-reps must be >= 1 (got %d)", *reps)
	}
	if *seed < 1 {
		log.Fatalf("-seed must be >= 1 (got %d)", *seed)
	}

	policies := parseList(*pol)
	if len(policies) == 0 {
		log.Fatal("-policy must name at least one policy")
	}

	var tailQuantiles []float64
	if *quants != "" {
		tailQuantiles = parseFloats("quantiles", *quants)
		*tail = true // a quantile set without -tail is clearly meant as a tail request
	}
	sweep := exp.Sweep{
		Name: "simulate",
		Grid: exp.Grid{
			K:         parseInts("k", *k),
			Rho:       parseFloats("rho", *rho),
			Policies:  policies,
			Scenarios: parseList(*scenario),
			Mixes:     parseList(*mix),
		},
		Reps:          *reps,
		BaseSeed:      *seed,
		Warmup:        *warmup,
		Jobs:          *jobs,
		AutoWarmup:    *autoWarm,
		Batches:       *batches,
		Tail:          *tail,
		TailQuantiles: tailQuantiles,
		Engine:        *engine,
	}
	if len(sweep.Grid.Scenarios) > 0 && len(sweep.Grid.Mixes) > 0 {
		log.Fatal("-scenario and -mix are mutually exclusive")
	}
	if len(sweep.Grid.Scenarios) == 0 && len(sweep.Grid.Mixes) == 0 {
		sweep.Grid.MuI = parseFloats("muI", *muI)
		sweep.Grid.MuE = parseFloats("muE", *muE)
	} else {
		// Workload presets fix their own size distributions; explicit
		// service-rate flags would be silently meaningless.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "muI" || f.Name == "muE" {
				log.Fatalf("-%s cannot be combined with -scenario/-mix (presets fix their size distributions)", f.Name)
			}
		})
	}

	opt := exp.Options{Workers: *workers}
	switch *backend {
	case "pool":
	case "proc":
		opt.Backend = &exp.ProcBackend{Procs: *procs}
	case "fabric":
		if *dispatch == "" {
			log.Fatal("-backend fabric requires -dispatcher host:port")
		}
		opt.Backend = &fabric.Backend{Addr: *dispatch, Name: "simulate"}
	default:
		log.Fatalf("unknown -backend %q (want pool, proc or fabric)", *backend)
	}
	if *cache != "" {
		fc, err := exp.OpenFileCache(*cache)
		if err != nil {
			log.Fatal(err)
		}
		if msg := exp.CorruptWarning(*cache, fc.Corrupt()); msg != "" {
			log.Print(msg)
		}
		defer fc.Close()
		opt.Cache = fc
	}

	// Ctrl-C cancels the sweep; completed cells are already in the cache,
	// so the next run resumes where this one stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rs, err := exp.Run(ctx, sweep, opt)
	if err != nil {
		log.Fatal(err)
	}

	cells := len(rs.Cells)
	fmt.Printf("sweep: %d cells x %d reps, %d jobs/rep (seed %d)\n\n", cells, *reps, *jobs, *seed)
	fmt.Printf("%-3s %-5s %-5s %-5s %-14s %-10s %10s %10s %10s %10s %10s %8s %9s\n",
		"k", "rho", "muI", "muE", "preset", "policy", "E[T]", "±95%", "E[T_I]", "E[T_E]", "E[N]", "util", "jobs")
	for _, cr := range rs.Cells {
		c := cr.Cell
		// No CI exists for a single replication without batch means; show
		// "-" rather than a misleading zero width.
		ci := fmt.Sprintf("%10.6f", cr.ETCI)
		if len(cr.Reps) < 2 && cr.ETCI == 0 {
			ci = fmt.Sprintf("%10s", "-")
		}
		preset := c.Scenario
		if c.Mix != "" {
			preset = c.Mix
		}
		fmt.Printf("%-3d %-5g %-5g %-5g %-14s %-10s %10.6f %s %10.6f %10.6f %10.6f %8.4f %9d\n",
			c.K, c.Rho, c.MuI, c.MuE, preset, c.Policy, cr.ET, ci, cr.ETI, cr.ETE, cr.EN, cr.Util, cr.Completions)
		if len(cr.ETPerClass) > 2 {
			fmt.Printf("%-9s per-class E[T]:", "")
			for i, v := range cr.ETPerClass {
				fmt.Printf(" [%d]=%.6f", i, v)
			}
			fmt.Println()
		}
		if len(cr.P99PerClass) > 0 {
			fmt.Printf("%-9s p99: all=%.6f", "", cr.P99)
			for i, v := range cr.P99PerClass {
				fmt.Printf(" [%d]=%.6f", i, v)
			}
			fmt.Println()
		}
		if len(cr.Quantiles) > 0 {
			fmt.Printf("%-9s quantiles:", "")
			for qi, q := range sweep.TailQuantiles {
				fmt.Printf(" p%g=%.6f", q*100, cr.Quantiles[qi])
			}
			fmt.Println()
		}
	}

	if *csvPath != "" {
		writeTo(*csvPath, rs.WriteCSV)
	}
	if *jsonPath != "" {
		writeTo(*jsonPath, rs.WriteJSON)
	}
}

func writeTo(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
