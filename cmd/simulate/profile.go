package main

// pprof wiring for the simulate CLI: -cpuprofile / -memprofile /
// -mutexprofile mirror `go test`'s flags so a production-shaped sweep can
// be profiled directly, without reshaping it into a benchmark. The
// profiles are written with the standard runtime/pprof encoders and load
// in `go tool pprof` as-is.

import (
	"log"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiling starts the requested profilers and returns a stop
// function to defer: it stops the CPU profile and writes the heap and
// mutex profiles at exit. Empty paths disable the corresponding profile.
func startProfiling(cpuPath, memPath, mutexPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
	}
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(5)
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
			runtime.GC() // flush recent frees so the heap profile is settled
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
			f.Close()
		}
		if mutexPath != "" {
			f, err := os.Create(mutexPath)
			if err != nil {
				log.Fatalf("-mutexprofile: %v", err)
			}
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				log.Fatalf("-mutexprofile: %v", err)
			}
			f.Close()
		}
	}
}
