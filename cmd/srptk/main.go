// Command srptk runs the Appendix A experiment: SRPT-k on batch instances
// of parallelizable jobs (all arriving at time 0, each with a
// parallelizability cap), compared against the LP lower bound of the dual
// fitting proof and — for small instances — against the best priority
// permutation. Theorem 9 guarantees SRPT-k is a 4-approximation.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/srpt"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("srptk: ")
	var (
		trials = flag.Int("trials", 500, "random instances per family")
		seed   = flag.Uint64("seed", 1, "RNG seed")
		brute  = flag.Bool("brute", false, "also compare against the best priority order (n<=7)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *trials < 1 {
		log.Fatalf("-trials must be >= 1 (got %d)", *trials)
	}

	fmt.Println("SRPT-k batch scheduling (Appendix A): total response vs LP lower bound")
	fmt.Println("family                         worst ratio   mean ratio   (bound: 4.0)")
	for _, row := range core.SRPTExperiment(*trials, *seed) {
		fmt.Printf("n=%-3d k=%-3d sizes=%-16s %10.4f %12.4f\n",
			row.N, row.K, row.SizeDist, row.WorstRatio, row.MeanRatio)
	}

	if *brute {
		fmt.Println("\nbrute-force check on small instances (n=7, k=4, exp sizes):")
		r := xrand.New(*seed + 1)
		worstVsBest := 0.0
		for trial := 0; trial < 50; trial++ {
			batch := workload.RandomBatch(r, 7, dist.NewExponential(1), 4)
			srptTotal := srpt.SRPTK(batch, 4).TotalResponse
			best := srpt.BestPriorityOrder(batch, 4).TotalResponse
			if ratio := srptTotal / best; ratio > worstVsBest {
				worstVsBest = ratio
			}
		}
		fmt.Printf("  worst SRPT-k / best-permutation ratio over 50 instances: %.4f\n", worstVsBest)
	}
}
