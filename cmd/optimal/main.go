// Command optimal computes the average-cost-optimal allocation policy by
// relative value iteration on the truncated two-class chain (the MDP-based
// numerical approach of [7] that the paper references in Section 5), then
// compares it against IF, EF and the best threshold policy.
//
// With muI >= muE it confirms Theorem 5 (the optimum equals IF). With
// muI < muE it explores the paper's open question, printing the switching
// structure of the optimal policy.
//
// Usage:
//
//	optimal -k 4 -rho 0.8 -muI 0.4 -muE 1.0
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/mdp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimal: ")
	var (
		k    = flag.Int("k", 4, "number of servers")
		rho  = flag.Float64("rho", 0.8, "system load (lambdaI=lambdaE)")
		muI  = flag.Float64("muI", 0.4, "inelastic service rate")
		muE  = flag.Float64("muE", 1.0, "elastic service rate")
		capN = flag.Int("cap", 100, "truncation cap per dimension")
		show = flag.Int("show", 12, "rows/cols of the decision table to print")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *k < 1 {
		log.Fatalf("-k must be >= 1 (got %d)", *k)
	}
	if !(*rho > 0 && *rho < 1) {
		log.Fatalf("-rho must be in (0, 1) (got %g)", *rho)
	}
	if *muI <= 0 || *muE <= 0 {
		log.Fatalf("service rates must be positive (got muI=%g, muE=%g)", *muI, *muE)
	}
	if *capN < 2 {
		log.Fatalf("-cap must be >= 2 (got %d)", *capN)
	}
	if *show < 0 || *show > *capN {
		log.Fatalf("-show must be in [0, %d] (got %d)", *capN, *show)
	}

	s := core.ForLoad(*k, *rho, *muI, *muE)
	m := s.Model2D()
	fmt.Printf("system: k=%d rho=%.3f muI=%g muE=%g\n\n", *k, *rho, *muI, *muE)

	opt, err := mdp.Solve(mdp.Config{Model: m, CapI: *capN, CapE: *capN, Tol: 1e-11})
	if err != nil {
		log.Fatal(err)
	}
	ifPerf, err := ctmc.SolvePolicy(m, ctmc.IFAlloc, *capN, *capN)
	if err != nil {
		log.Fatal(err)
	}
	efPerf, err := ctmc.SolvePolicy(m, ctmc.EFAlloc, *capN, *capN)
	if err != nil {
		log.Fatal(err)
	}
	bestThresh, bestCap := efPerf.MeanT, 0
	for c := 1; c <= *k; c++ {
		p, err := ctmc.SolvePolicy(m, ctmc.ThresholdAlloc(c), *capN, *capN)
		if err != nil {
			log.Fatal(err)
		}
		if p.MeanT < bestThresh {
			bestThresh, bestCap = p.MeanT, c
		}
	}

	fmt.Printf("mean response times (exact, truncated chain %dx%d):\n", *capN, *capN)
	fmt.Printf("  optimal (MDP):       E[T] = %.6f   (%d iterations)\n", opt.MeanT, opt.Iters)
	fmt.Printf("  Inelastic-First:     E[T] = %.6f   (+%.2f%% vs optimal)\n",
		ifPerf.MeanT, 100*(ifPerf.MeanT-opt.MeanT)/opt.MeanT)
	fmt.Printf("  Elastic-First:       E[T] = %.6f   (+%.2f%% vs optimal)\n",
		efPerf.MeanT, 100*(efPerf.MeanT-opt.MeanT)/opt.MeanT)
	fmt.Printf("  best threshold (%d): E[T] = %.6f   (+%.2f%% vs optimal)\n",
		bestCap, bestThresh, 100*(bestThresh-opt.MeanT)/opt.MeanT)
	fmt.Printf("  optimal matches IF in %.1f%% of core states\n\n", 100*opt.MatchesIF())

	fmt.Printf("optimal inelastic allocation a*(i, j) (rows i = inelastic count,\ncols j = elastic count; elastic jobs receive k - a*):\n\n     j:")
	for j := 0; j < *show; j++ {
		fmt.Printf("%3d", j)
	}
	fmt.Println()
	for i := 0; i <= *show; i++ {
		fmt.Printf("i=%3d ", i)
		for j := 0; j < *show; j++ {
			fmt.Printf("%3d", opt.AllocI[i][j])
		}
		fmt.Println()
	}
	if *muI < *muE {
		fmt.Println("\nmuI < muE: the open regime. Note the state-dependent switching —")
		fmt.Println("the optimal policy is neither IF (full rows of min(i,k)) nor EF")
		fmt.Println("(all zeros when j > 0).")
	} else {
		fmt.Println("\nmuI >= muE: Theorem 5 territory — the table reproduces IF.")
	}
}
