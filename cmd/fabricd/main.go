// Command fabricd is the networked sweep fabric daemon. One process runs as
// the dispatcher — it owns the task queue, the job registry and the outcome
// cache, and listens for workers and clients — and any number of processes
// on any reachable host run as workers that connect to it and execute
// tasks:
//
//	fabricd -role dispatcher -listen 127.0.0.1:9071 -cache outcomes.jsonl
//	fabricd -role dispatcher -listen 127.0.0.1:9071 -journal jobs.jsonl
//	fabricd -role worker -dispatcher 127.0.0.1:9071 -slots 8
//
// Sweeps are submitted either attached, from any driver with
// `-backend fabric -dispatcher host:port` (simulate, figures, dominance),
// or detached via cmd/psq. Workers heartbeat while connected and reconnect
// with exponential backoff; the dispatcher re-queues the in-flight task of
// a lost worker, so killing a worker mid-sweep changes nothing about the
// results — every backend is bit-identical by construction.
//
// With -journal, the dispatcher is crash-safe: every submission, grant and
// completion is appended write-ahead to a JSONL journal, and a restarted
// dispatcher replays it — jobs resume, finished tasks are not recomputed,
// and clients that redialed re-attach by idempotency ref. SIGTERM drains
// gracefully (workers finish their in-flight task; the dispatcher stops
// granting, waits for in-flight tasks, journals a clean-shutdown record);
// SIGINT, or a second signal, stops immediately.
//
// -listen accepts ":0" to pick a free port; -addr-file then publishes the
// actual address for scripts (the CI gate uses exactly this).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/fabric"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fabricd: ")
	var (
		role         = flag.String("role", "", "dispatcher or worker (required)")
		listen       = flag.String("listen", "127.0.0.1:9071", "dispatcher: address to listen on (\":0\" picks a free port)")
		addrFile     = flag.String("addr-file", "", "dispatcher: write the actual listen address to this file (for scripts with -listen :0)")
		cachePath    = flag.String("cache", "", "dispatcher: JSONL outcome cache; finished tasks are reused across jobs and clients")
		journalPath  = flag.String("journal", "", "dispatcher: JSONL write-ahead job journal; a restart replays it, resuming jobs and re-queueing interrupted tasks")
		hbTimeout    = flag.Duration("heartbeat-timeout", 15*time.Second, "dispatcher: silence after which a worker is declared dead and its task re-queued")
		taskDeadline = flag.Duration("task-deadline", 0, "dispatcher: per-task execution deadline; an assignment unanswered this long is re-queued against the same retry budget as a worker loss (0 disables)")
		attempts     = flag.Int("max-attempts", 3, "dispatcher: attempts per task across worker losses (and, with -journal, dispatcher restarts) before the job fails")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight tasks before giving up")
		dispatcher   = flag.String("dispatcher", "", "worker: dispatcher address to connect to (required)")
		name         = flag.String("name", "", "worker: name reported to the dispatcher (default host:pid)")
		slots        = flag.Int("slots", 1, "worker: concurrent task slots (independent connections) in this process")
		heartbeat    = flag.Duration("heartbeat", 3*time.Second, "worker: heartbeat interval; keep well under the dispatcher's -heartbeat-timeout")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}

	switch *role {
	case "dispatcher":
		runDispatcher(*listen, *addrFile, *cachePath, *journalPath, *hbTimeout, *taskDeadline, *attempts, *drainWait)
	case "worker":
		runWorker(*dispatcher, *name, *slots, *heartbeat, *drainWait)
	default:
		log.Fatalf("-role must be dispatcher or worker (got %q)", *role)
	}
}

func runDispatcher(listen, addrFile, cachePath, journalPath string, hbTimeout, taskDeadline time.Duration, attempts int, drainWait time.Duration) {
	opts := fabric.DispatcherOptions{
		MaxTaskAttempts:  attempts,
		HeartbeatTimeout: hbTimeout,
		TaskDeadline:     taskDeadline,
		Logf:             log.Printf,
	}
	if cachePath != "" {
		fc, err := fabric.OpenFileOutcomeCache(cachePath)
		if err != nil {
			log.Fatal(err)
		}
		if msg := exp.CorruptWarning(cachePath, fc.Corrupt()); msg != "" {
			log.Print(msg)
		}
		defer fc.Close()
		log.Printf("outcome cache %s: %d entries", cachePath, fc.Len())
		opts.Cache = fc
	}
	if journalPath != "" {
		jl, err := fabric.OpenJournal(journalPath)
		if err != nil {
			log.Fatal(err)
		}
		defer jl.Close()
		opts.Journal = jl
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dispatcher listening on %s (env probe %s)", ln.Addr(), fabric.EnvProbe())
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	d := fabric.NewDispatcher(opts)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		if sig == syscall.SIGTERM {
			// Graceful: stop granting, let in-flight tasks land, journal the
			// clean shutdown. A second signal skips straight to Close.
			log.Printf("SIGTERM: draining (timeout %v; send again to stop now)", drainWait)
			done := make(chan struct{})
			go func() {
				d.Drain(drainWait)
				close(done)
			}()
			select {
			case <-done:
			case <-sigCh:
				log.Printf("second signal: stopping now")
			}
		} else {
			log.Printf("interrupt: shutting down")
		}
		d.Close()
	}()
	if err := d.Serve(ln); err != nil {
		log.Fatal(err)
	}
}

func runWorker(dispatcher, name string, slots int, heartbeat, drainWait time.Duration) {
	if dispatcher == "" {
		log.Fatal("-role worker requires -dispatcher host:port")
	}
	if slots < 1 {
		log.Fatalf("-slots must be >= 1 (got %d)", slots)
	}
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	log.Printf("%d worker slot(s) connecting to %s", slots, dispatcher)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	workers := make([]*fabric.Worker, slots)
	for i := 0; i < slots; i++ {
		w := &fabric.Worker{
			Dispatcher:        dispatcher,
			Name:              fmt.Sprintf("%s/%d", name, i),
			HeartbeatInterval: heartbeat,
			Logf:              log.Printf,
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				// A handshake refusal is permanent (version or env drift):
				// surface it loudly and bring the whole process down rather
				// than serve with a subset of drifted slots.
				log.Fatalf("worker %s: %v", w.Name, err)
			}
		}()
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		if sig == syscall.SIGTERM {
			// Graceful: each slot finishes its in-flight task, delivers the
			// result, and deregisters. A second signal, or the drain timeout,
			// cancels hard.
			log.Printf("SIGTERM: draining %d slot(s) (timeout %v; send again to stop now)", slots, drainWait)
			for _, w := range workers {
				w.Drain()
			}
			select {
			case <-sigCh:
				log.Printf("second signal: stopping now")
			case <-time.After(drainWait):
				log.Printf("drain timed out, stopping now")
			case <-ctx.Done():
			}
			cancel()
			return
		}
		log.Printf("interrupt: shutting down")
		cancel()
	}()
	wg.Wait()
	cancel()
}
