// Command fabricd is the networked sweep fabric daemon. One process runs as
// the dispatcher — it owns the task queue, the job registry and the outcome
// cache, and listens for workers and clients — and any number of processes
// on any reachable host run as workers that connect to it and execute
// tasks:
//
//	fabricd -role dispatcher -listen 127.0.0.1:9071 -cache outcomes.jsonl
//	fabricd -role worker -dispatcher 127.0.0.1:9071 -slots 8
//
// Sweeps are submitted either attached, from any driver with
// `-backend fabric -dispatcher host:port` (simulate, figures, dominance),
// or detached via cmd/psq. Workers heartbeat while connected and reconnect
// with exponential backoff; the dispatcher re-queues the in-flight task of
// a lost worker, so killing a worker mid-sweep changes nothing about the
// results — every backend is bit-identical by construction.
//
// -listen accepts ":0" to pick a free port; -addr-file then publishes the
// actual address for scripts (the CI gate uses exactly this).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/fabric"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fabricd: ")
	var (
		role       = flag.String("role", "", "dispatcher or worker (required)")
		listen     = flag.String("listen", "127.0.0.1:9071", "dispatcher: address to listen on (\":0\" picks a free port)")
		addrFile   = flag.String("addr-file", "", "dispatcher: write the actual listen address to this file (for scripts with -listen :0)")
		cachePath  = flag.String("cache", "", "dispatcher: JSONL outcome cache; finished tasks are reused across jobs and clients")
		hbTimeout  = flag.Duration("heartbeat-timeout", 15*time.Second, "dispatcher: silence after which a worker is declared dead and its task re-queued")
		attempts   = flag.Int("max-attempts", 3, "dispatcher: attempts per task across worker losses before the job fails")
		dispatcher = flag.String("dispatcher", "", "worker: dispatcher address to connect to (required)")
		name       = flag.String("name", "", "worker: name reported to the dispatcher (default host:pid)")
		slots      = flag.Int("slots", 1, "worker: concurrent task slots (independent connections) in this process")
		heartbeat  = flag.Duration("heartbeat", 3*time.Second, "worker: heartbeat interval; keep well under the dispatcher's -heartbeat-timeout")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *role {
	case "dispatcher":
		runDispatcher(ctx, *listen, *addrFile, *cachePath, *hbTimeout, *attempts)
	case "worker":
		runWorker(ctx, *dispatcher, *name, *slots, *heartbeat)
	default:
		log.Fatalf("-role must be dispatcher or worker (got %q)", *role)
	}
}

func runDispatcher(ctx context.Context, listen, addrFile, cachePath string, hbTimeout time.Duration, attempts int) {
	opts := fabric.DispatcherOptions{
		MaxTaskAttempts:  attempts,
		HeartbeatTimeout: hbTimeout,
		Logf:             log.Printf,
	}
	if cachePath != "" {
		fc, err := fabric.OpenFileOutcomeCache(cachePath)
		if err != nil {
			log.Fatal(err)
		}
		if msg := exp.CorruptWarning(cachePath, fc.Corrupt()); msg != "" {
			log.Print(msg)
		}
		defer fc.Close()
		log.Printf("outcome cache %s: %d entries", cachePath, fc.Len())
		opts.Cache = fc
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dispatcher listening on %s (env probe %s)", ln.Addr(), fabric.EnvProbe())
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	d := fabric.NewDispatcher(opts)
	go func() {
		<-ctx.Done()
		log.Printf("shutting down")
		d.Close()
	}()
	if err := d.Serve(ln); err != nil {
		log.Fatal(err)
	}
}

func runWorker(ctx context.Context, dispatcher, name string, slots int, heartbeat time.Duration) {
	if dispatcher == "" {
		log.Fatal("-role worker requires -dispatcher host:port")
	}
	if slots < 1 {
		log.Fatalf("-slots must be >= 1 (got %d)", slots)
	}
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	log.Printf("%d worker slot(s) connecting to %s", slots, dispatcher)
	var wg sync.WaitGroup
	for i := 0; i < slots; i++ {
		w := &fabric.Worker{
			Dispatcher:        dispatcher,
			Name:              fmt.Sprintf("%s/%d", name, i),
			HeartbeatInterval: heartbeat,
			Logf:              log.Printf,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				// A handshake refusal is permanent (version or env drift):
				// surface it loudly and bring the whole process down rather
				// than serve with a subset of drifted slots.
				log.Fatalf("worker %s: %v", w.Name, err)
			}
		}()
	}
	wg.Wait()
}
